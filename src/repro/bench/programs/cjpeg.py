"""``cjpeg`` — JPEG-style compression (MiBench consumer/cjpeg stand-in)."""

from __future__ import annotations

from repro.bench.inputs import format_array, image
from repro.bench.programs._jpeg_common import QTABLE, ZIGZAG, dct_matrix

NAME = "cjpeg"
DESCRIPTION = "8x8 integer DCT + quantization + zigzag + run-length coding"

_W = 8
_H = 8


def source(scale: int = 1) -> str:
    w, h = _W, _H * scale
    img = image(w, h, seed=0x3BE6)
    t = dct_matrix()
    return f"""
// cjpeg: per 8x8 block — level shift, T*X*T'/4096 integer DCT,
// quantize, zigzag scan, run-length encode (run << 16 | value).
{format_array("img", img)}
{format_array("dctT", t)}
{format_array("qtab", QTABLE)}
{format_array("zig", ZIGZAG)}
int blk[64];
int tmp[64];
int coef[64];
int W = {w};
int H = {h};

func load_block(bx, by) {{
  var y;
  for (y = 0; y < 8; y = y + 1) {{
    var x;
    for (x = 0; x < 8; x = x + 1) {{
      blk[y * 8 + x] = img[(by * 8 + y) * W + bx * 8 + x] - 128;
    }}
  }}
  return 0;
}}

func fdct() {{
  var u;
  var x;
  var k;
  for (u = 0; u < 8; u = u + 1) {{
    var u8 = u * 8;
    for (x = 0; x < 8; x = x + 1) {{
      var acc = 0;
      var o = x;
      for (k = 0; k < 8; k = k + 1) {{
        acc = acc + dctT[u8 + k] * blk[o];
        o = o + 8;
      }}
      tmp[u8 + x] = acc;
    }}
  }}
  var v;
  for (u = 0; u < 8; u = u + 1) {{
    var u8b = u * 8;
    for (v = 0; v < 8; v = v + 1) {{
      var acc2 = 0;
      var v8 = v * 8;
      for (k = 0; k < 8; k = k + 1) {{
        acc2 = acc2 + tmp[u8b + k] * dctT[v8 + k];
      }}
      coef[u8b + v] = acc2 / 4096;
    }}
  }}
  return 0;
}}

func quantize() {{
  var i;
  for (i = 0; i < 64; i = i + 1) {{
    coef[i] = coef[i] / qtab[i];
  }}
  return 0;
}}

func rle_block() {{
  var run = 0;
  var i;
  var emitted = 0;
  for (i = 0; i < 64; i = i + 1) {{
    var v = coef[zig[i]];
    if (v == 0) {{
      run = run + 1;
    }} else {{
      out((run << 16) | (v & 65535));
      emitted = emitted + 1;
      run = 0;
    }}
  }}
  out((63 << 16) | 65535);  // end-of-block marker
  return emitted;
}}

func main() {{
  var by;
  var total = 0;
  for (by = 0; by < H / 8; by = by + 1) {{
    var bx;
    for (bx = 0; bx < W / 8; bx = bx + 1) {{
      load_block(bx, by);
      fdct();
      quantize();
      total = total + rle_block();
    }}
  }}
  out(total);
  return 0;
}}
"""
