"""``sha`` — real SHA-1 rounds (MiBench security/sha stand-in)."""

from __future__ import annotations

from repro.bench.inputs import format_array, rand_bytes

NAME = "sha"
DESCRIPTION = "SHA-1 digest of a pseudo-random message (all 80 rounds)"


def _padded_message(msg: list[int]) -> list[int]:
    """SHA-1 padding: 0x80, zeros, 64-bit big-endian bit length."""
    out = list(msg) + [0x80]
    while len(out) % 64 != 56:
        out.append(0)
    bitlen = len(msg) * 8
    out += [(bitlen >> (8 * i)) & 0xFF for i in range(7, -1, -1)]
    return out


def source(scale: int = 1) -> str:
    msg = rand_bytes(32 * scale, seed=0x5AA5)
    padded = _padded_message(msg)
    nblocks = len(padded) // 64
    return f"""
// sha: SHA-1 over a pre-padded message, big-endian word loads,
// all 80 rounds per block with the standard K constants.
{format_array("msg", padded)}
int w[80];
int h[5] = {{1732584193, 4023233417, 2562383102, 271733878, 3285377520}};
int NBLOCKS = {nblocks};

func rotl(x, n) {{
  return (x << n) | (x >> (32 - n));
}}

func process(block) {{
  var t;
  var base = block * 64;
  for (t = 0; t < 16; t = t + 1) {{
    var o = base + t * 4;
    w[t] = (msg[o] << 24) | (msg[o + 1] << 16) | (msg[o + 2] << 8)
         | msg[o + 3];
  }}
  for (t = 16; t < 80; t = t + 1) {{
    w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }}
  var a = h[0];
  var b = h[1];
  var c = h[2];
  var d = h[3];
  var e = h[4];
  for (t = 0; t < 80; t = t + 1) {{
    var f;
    var k;
    if (t < 20) {{
      f = (b & c) | (~b & d);
      k = 1518500249;
    }} else if (t < 40) {{
      f = b ^ c ^ d;
      k = 1859775393;
    }} else if (t < 60) {{
      f = (b & c) | (b & d) | (c & d);
      k = 2400959708;
    }} else {{
      f = b ^ c ^ d;
      k = 3395469782;
    }}
    var tmp = rotl(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }}
  h[0] = h[0] + a;
  h[1] = h[1] + b;
  h[2] = h[2] + c;
  h[3] = h[3] + d;
  h[4] = h[4] + e;
  return 0;
}}

func main() {{
  var i;
  for (i = 0; i < NBLOCKS; i = i + 1) {{
    process(i);
  }}
  for (i = 0; i < 5; i = i + 1) {{
    out(h[i]);
  }}
  return 0;
}}
"""
