"""``search`` — string search (MiBench office/stringsearch stand-in)."""

from __future__ import annotations

from repro.bench.inputs import format_array, text_corpus

NAME = "search"
DESCRIPTION = "multi-pattern substring search over a word corpus"

_PATTERNS = [b"quick", b"lazy", b"ox", b"the"]


def source(scale: int = 1) -> str:
    n = 288 * scale
    text = text_corpus(n, seed=0x5EA7C4)
    pats = b"\0".join(_PATTERNS) + b"\0"
    pat_bytes = list(pats)
    return f"""
// search: naive multi-pattern scan with first-character skip table.
{format_array("text", text)}
{format_array("pats", pat_bytes)}
int N = {n};
int NPATS = {len(_PATTERNS)};

func patlen(off) {{
  var l = 0;
  while (pats[off + l] != 0) {{
    l = l + 1;
  }}
  return l;
}}

func count_matches(off, len) {{
  var count = 0;
  var i;
  var first = pats[off];
  for (i = 0; i + len <= N; i = i + 1) {{
    if (text[i] == first) {{
      var j = 1;
      while (j < len && text[i + j] == pats[off + j]) {{
        j = j + 1;
      }}
      if (j == len) {{
        count = count + 1;
      }}
    }}
  }}
  return count;
}}

func main() {{
  var off = 0;
  var p;
  var total = 0;
  for (p = 0; p < NPATS; p = p + 1) {{
    var len = patlen(off);
    var c = count_matches(off, len);
    out(c);
    total = total + c * (p + 1);
    off = off + len + 1;
  }}
  out(total);
  return 0;
}}
"""
