"""``caes`` — real AES-128 encryption (MiBench security/rijndael stand-in)."""

from __future__ import annotations

from repro.bench.inputs import format_array, rand_bytes

NAME = "caes"
DESCRIPTION = "AES-128 ECB encryption: key expansion plus full 10 rounds"


def _aes_sbox() -> list[int]:
    """Compute the AES S-box from GF(2^8) inverses (no tables pasted)."""
    p, q = 1, 1
    sbox = [0] * 256
    sbox[0] = 0x63
    while True:
        # p := p * 3 in GF(2^8)
        p = p ^ ((p << 1) & 0xFF) ^ (0x1B if p & 0x80 else 0)
        # q := q / 3
        q ^= (q << 1) & 0xFF
        q ^= (q << 2) & 0xFF
        q ^= (q << 4) & 0xFF
        if q & 0x80:
            q ^= 0x09
        x = q ^ ((q << 1) | (q >> 7)) ^ ((q << 2) | (q >> 6)) \
            ^ ((q << 3) | (q >> 5)) ^ ((q << 4) | (q >> 4))
        sbox[p] = (x ^ 0x63) & 0xFF
        if p == 1:
            break
    return sbox


def source(scale: int = 1, key: list[int] | None = None,
           plaintext: list[int] | None = None) -> str:
    sbox = _aes_sbox()
    if key is None:
        key = rand_bytes(16, seed=0xAE5)
    if plaintext is None:
        plaintext = rand_bytes(16 * scale, seed=0xBEEF)
    nblocks = len(plaintext) // 16
    rcon = [1, 2, 4, 8, 16, 32, 64, 128, 27, 54]
    return f"""
// caes: AES-128 (FIPS-197) — key expansion into 11 round keys, then
// SubBytes/ShiftRows/MixColumns/AddRoundKey for each 16-byte block.
{format_array("sbox", sbox)}
{format_array("rcon", rcon)}
{format_array("key", key)}
{format_array("pt", plaintext)}
int rk[176];
int st[16];
int NBLOCKS = {nblocks};

func xtime(x) {{
  return ((x << 1) ^ ((x >> 7) * 27)) & 255;
}}

func expand_key() {{
  var i;
  for (i = 0; i < 16; i = i + 1) {{
    rk[i] = key[i];
  }}
  for (i = 4; i < 44; i = i + 1) {{
    var o = i * 4;
    var t0 = rk[o - 4];
    var t1 = rk[o - 3];
    var t2 = rk[o - 2];
    var t3 = rk[o - 1];
    if (i % 4 == 0) {{
      var tmp = t0;
      t0 = sbox[t1] ^ rcon[i / 4 - 1];
      t1 = sbox[t2];
      t2 = sbox[t3];
      t3 = sbox[tmp];
    }}
    rk[o] = rk[o - 16] ^ t0;
    rk[o + 1] = rk[o - 15] ^ t1;
    rk[o + 2] = rk[o - 14] ^ t2;
    rk[o + 3] = rk[o - 13] ^ t3;
  }}
  return 0;
}}

func add_round_key(round) {{
  var i;
  for (i = 0; i < 16; i = i + 1) {{
    st[i] = st[i] ^ rk[round * 16 + i];
  }}
  return 0;
}}

func sub_shift() {{
  var i;
  for (i = 0; i < 16; i = i + 1) {{
    st[i] = sbox[st[i]];
  }}
  // ShiftRows on column-major state: row r rotates left by r.
  var t = st[1];
  st[1] = st[5];
  st[5] = st[9];
  st[9] = st[13];
  st[13] = t;
  t = st[2];
  st[2] = st[10];
  st[10] = t;
  t = st[6];
  st[6] = st[14];
  st[14] = t;
  t = st[3];
  st[3] = st[15];
  st[15] = st[11];
  st[11] = st[7];
  st[7] = t;
  return 0;
}}

func mix_columns() {{
  var c;
  for (c = 0; c < 4; c = c + 1) {{
    var o = c * 4;
    var a0 = st[o];
    var a1 = st[o + 1];
    var a2 = st[o + 2];
    var a3 = st[o + 3];
    var all = a0 ^ a1 ^ a2 ^ a3;
    st[o] = a0 ^ all ^ xtime(a0 ^ a1);
    st[o + 1] = a1 ^ all ^ xtime(a1 ^ a2);
    st[o + 2] = a2 ^ all ^ xtime(a2 ^ a3);
    st[o + 3] = a3 ^ all ^ xtime(a3 ^ a0);
  }}
  return 0;
}}

func encrypt_block(b) {{
  var i;
  for (i = 0; i < 16; i = i + 1) {{
    st[i] = pt[b * 16 + i];
  }}
  add_round_key(0);
  var round;
  for (round = 1; round < 10; round = round + 1) {{
    sub_shift();
    mix_columns();
    add_round_key(round);
  }}
  sub_shift();
  add_round_key(10);
  for (i = 0; i < 4; i = i + 1) {{
    out((st[i * 4] << 24) | (st[i * 4 + 1] << 16)
      | (st[i * 4 + 2] << 8) | st[i * 4 + 3]);
  }}
  return 0;
}}

func main() {{
  expand_key();
  var b;
  for (b = 0; b < NBLOCKS; b = b + 1) {{
    encrypt_block(b);
  }}
  return 0;
}}
"""
