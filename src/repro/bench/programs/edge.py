"""``edge`` — Sobel edge detection (MiBench automotive/susan -e stand-in)."""

from __future__ import annotations

from repro.bench.inputs import format_array, image

NAME = "edge"
DESCRIPTION = "Sobel gradient magnitude with thresholding"

_W = 16
_H = 16
_THRESH = 260


def source(scale: int = 1) -> str:
    w, h = _W, _H * scale
    img = image(w, h, seed=0xED6E)
    return f"""
// edge: |Gx| + |Gy| Sobel magnitude, thresholded edge map.
{format_array("img", img)}
int edges[{w * h}];
int W = {w};
int H = {h};
int THRESH = {_THRESH};

func main() {{
  var x;
  var y;
  var count = 0;
  var poshash = 0;
  for (y = 1; y < H - 1; y = y + 1) {{
    var base = y * W;
    for (x = 1; x < W - 1; x = x + 1) {{
      var p = base + x;
      var gx = img[p - W + 1] + 2 * img[p + 1] + img[p + W + 1]
             - img[p - W - 1] - 2 * img[p - 1] - img[p + W - 1];
      var gy = img[p + W - 1] + 2 * img[p + W] + img[p + W + 1]
             - img[p - W - 1] - 2 * img[p - W] - img[p - W + 1];
      if (gx < 0) {{
        gx = 0 - gx;
      }}
      if (gy < 0) {{
        gy = 0 - gy;
      }}
      var mag = gx + gy;
      if (mag > THRESH) {{
        edges[p] = 1;
        count = count + 1;
        poshash = poshash ^ p + (poshash << 1);
      }} else {{
        edges[p] = 0;
      }}
    }}
  }}
  out(count);
  out(poshash);
  var i;
  var rowacc = 0;
  for (i = 0; i < W * H; i = i + 1) {{
    rowacc = rowacc + edges[i] * (i + 3);
  }}
  out(rowacc);
  return 0;
}}
"""
