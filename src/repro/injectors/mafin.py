"""MaFIN — the MARSS-based Fault INjector (user-facing facade).

Bundles the MARSS-like simulator configuration with the three framework
modules (mask generator, campaign controller/dispatcher, parser) behind
a small object API, mirroring how the paper presents the tool.
"""

from __future__ import annotations

from repro.core.campaign import CampaignResult, InjectionCampaign, \
    run_campaign
from repro.core.fault import TRANSIENT
from repro.sim.config import SimConfig, setup_config
from repro.sim.gem5 import build_sim


class _InjectorBase:
    """Shared facade machinery for MaFIN and GeFIN."""

    setup_label = ""

    def __init__(self, scaled: bool = True):
        self.scaled = scaled
        self.config: SimConfig = setup_config(self.setup_label,
                                              scaled=scaled)

    @property
    def isa(self) -> str:
        return self.config.isa

    def structures(self, benchmark: str = "sha") -> dict[str, str]:
        """Injectable structures (Table IV), name → description."""
        from repro.bench import suite
        sim = build_sim(suite.program(benchmark, self.config.isa),
                        self.config)
        return {name: site.desc for name, site in sim.fault_sites().items()}

    def campaign(self, benchmark: str, structure: str,
                 injections: int | None = None, seed: int = 1,
                 fault_type: str = TRANSIENT,
                 early_stop: bool = True) -> CampaignResult:
        """Run one injection campaign on this injector."""
        return run_campaign(self.setup_label, benchmark, structure,
                            injections=injections, seed=seed,
                            fault_type=fault_type, early_stop=early_stop,
                            scaled=self.scaled)

    def build_campaign(self, benchmark: str, structure: str,
                       **kwargs) -> InjectionCampaign:
        """Lower-level access: a configurable campaign object."""
        from repro.bench import suite
        program = suite.program(benchmark, self.config.isa)
        return InjectionCampaign(self.config, program, benchmark,
                                 structure, **kwargs)

    def features(self) -> dict:
        """Capability summary backing the Table I comparison."""
        return {
            "injector": type(self).__name__,
            "simulator": self.config.name,
            "isas": self.isas_supported(),
            "full_system": True,
            "fault_models": ["transient", "intermittent", "permanent",
                             "multi-bit", "multi-structure"],
            "targets_all_major_structures": True,
            "out_of_order": True,
            "early_stop_optimizations": ["invalid-entry",
                                         "overwritten-before-read"],
            "checkpointing": True,
        }

    @classmethod
    def isas_supported(cls) -> list[str]:
        raise NotImplementedError


class MaFIN(_InjectorBase):
    """The MARSS-based fault injector (x86 only, like MARSS)."""

    setup_label = "MaFIN-x86"

    @classmethod
    def isas_supported(cls) -> list[str]:
        return ["x86"]
