"""GeFIN — the Gem5-based Fault INjector (user-facing facade).

Like :class:`~repro.injectors.mafin.MaFIN` but on the gem5-like
simulator, supporting both the x86 and ARM ISAs (the paper's cross-ISA
study runs entirely on GeFIN).
"""

from __future__ import annotations

from repro.injectors.mafin import _InjectorBase


class GeFIN(_InjectorBase):
    """The gem5-based fault injector (x86 and ARM)."""

    def __init__(self, isa: str = "x86", scaled: bool = True):
        if isa not in ("x86", "arm"):
            raise ValueError(f"GeFIN supports x86/arm, not {isa!r}")
        self.setup_label = "GeFIN-x86" if isa == "x86" else "GeFIN-ARM"
        super().__init__(scaled=scaled)

    @classmethod
    def isas_supported(cls) -> list[str]:
        return ["x86", "arm"]
