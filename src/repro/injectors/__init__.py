"""User-facing injector facades: MaFIN (MARSS-based) and GeFIN
(gem5-based, x86 + ARM).
"""
