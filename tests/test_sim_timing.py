"""Integration tests for the two cycle-level OoO simulators."""

import copy

import pytest

from repro.sim.config import paper_config, scaled_config, setup_config
from repro.sim.gem5 import Gem5Sim, build_sim
from repro.sim.marss import MarssSim

from tests.helpers import (EXIT_X86, assemble_x86, fresh_sim, tiny_program,
                           tiny_reference, tiny_sim_outcome)

SETUPS = ("MaFIN-x86", "GeFIN-x86", "GeFIN-ARM")


class TestGoldenEquivalence:
    @pytest.mark.parametrize("setup", SETUPS)
    def test_matches_functional_reference(self, setup):
        isa = "arm" if setup == "GeFIN-ARM" else "x86"
        ref = tiny_reference(isa)
        out = tiny_sim_outcome(setup)
        assert out.reason == "exit"
        assert out.exit_code == ref.exit_code
        assert out.output == ref.output
        assert out.events == ref.events

    @pytest.mark.parametrize("setup", SETUPS)
    def test_deterministic(self, setup):
        a = fresh_sim(setup).run()
        b = fresh_sim(setup).run()
        assert a.cycles == b.cycles
        assert a.stats == b.stats

    def test_committed_instr_count_matches_functional(self):
        ref = tiny_reference("x86")
        out = tiny_sim_outcome("MaFIN-x86")
        # The final EXIT syscall ends the run mid-commit, so the timing
        # counter stops one short of the functional one.
        assert out.stats["committed_instrs"] == ref.stats["instrs"] - 1

    @pytest.mark.parametrize("setup", SETUPS)
    def test_plausible_ipc(self, setup):
        out = tiny_sim_outcome(setup)
        ipc = out.stats["committed_instrs"] / out.cycles
        assert 0.2 < ipc < 4.0


class TestSnapshots:
    def test_deepcopy_resumes_identically(self):
        sim = fresh_sim("GeFIN-x86")
        for _ in range(400):
            sim.step()
        clone = copy.deepcopy(sim)
        out_a = sim.run()
        out_b = clone.run()
        assert out_a.cycles == out_b.cycles
        assert out_a.output == out_b.output
        assert out_a.stats == out_b.stats

    def test_snapshot_isolated_from_original(self):
        sim = fresh_sim("MaFIN-x86")
        for _ in range(300):
            sim.step()
        clone = copy.deepcopy(sim)
        sim.run()
        # The clone must still be at cycle 300, unaffected.
        assert clone.cycle == 300
        out = clone.run()
        assert out.reason == "exit"


class TestPersonalityDifferences:
    def test_marss_issues_more_loads(self):
        m = tiny_sim_outcome("MaFIN-x86").stats
        g = tiny_sim_outcome("GeFIN-x86").stats
        assert m["issued_loads"] >= g["issued_loads"]
        assert m["load_replays"] > 0
        assert g["load_replays"] == 0

    def test_hypervisor_vs_cached_kernel(self):
        m = tiny_sim_outcome("MaFIN-x86").stats
        g = tiny_sim_outcome("GeFIN-x86").stats
        assert m["hypervisor_ops"] > 0
        assert m["kernel_cache_accesses"] == 0
        assert g["hypervisor_ops"] == 0
        assert g["kernel_cache_accesses"] > 0

    def test_marss_prefetchers_active(self):
        m = tiny_sim_outcome("MaFIN-x86").stats
        g = tiny_sim_outcome("GeFIN-x86").stats
        assert m["prefetches_issued"] >= 0
        assert g["prefetches_issued"] == 0

    def test_fault_site_tables(self):
        msites = fresh_sim("MaFIN-x86").fault_sites()
        gsites = fresh_sim("GeFIN-x86").fault_sites()
        # Table IV: MaFIN adds prefetchers and an indirect BTB.
        assert {"l1d_pref", "l1i_pref", "btb_ind"} <= set(msites)
        assert not {"l1d_pref", "l1i_pref", "btb_ind"} & set(gsites)
        common = {"int_rf", "fp_rf", "l1d", "l1d_tag", "l1i", "l1i_tag",
                  "l2", "l2_tag", "lsq", "iq", "itlb", "dtlb", "btb", "ras"}
        assert common <= set(msites) and common <= set(gsites)

    def test_lsq_data_field_sizes(self):
        msim = fresh_sim("MaFIN-x86")
        gsim = fresh_sim("GeFIN-x86")
        # MARSS: 32-entry unified queue; gem5: only the 16-entry SQ
        # holds data (Remark 1).
        assert msim.fault_sites()["lsq"].array.entries == 32
        assert gsim.fault_sites()["lsq"].array.entries == 16

    def test_wrong_config_rejected(self):
        with pytest.raises(ValueError):
            MarssSim(tiny_program("x86"), scaled_config("gem5", "x86"))
        with pytest.raises(ValueError):
            Gem5Sim(tiny_program("x86"), scaled_config("marss", "x86"))
        with pytest.raises(ValueError):
            Gem5Sim(tiny_program("arm"), scaled_config("gem5", "x86"))


class TestArchitecturalBehaviors:
    def test_deadlock_detected(self):
        # Branch-to-self spins forever without committing... it commits
        # actually; use a livelock: infinite loop exceeds no cycle budget
        # here, so craft a true deadlock: load from an address that
        # forwarding can never satisfy is hard to arrange — instead use
        # run()'s budget on an infinite loop.
        prog = assemble_x86("spin: jmp spin\n")
        sim = build_sim(prog, setup_config("GeFIN-x86"))
        out = sim.run(max_cycles=3000)
        assert out.reason == "cycle-limit"

    def test_division_by_zero_kills(self):
        prog = assemble_x86("""
  li r0, 10
  li r1, 0
  div r0, r1
""" + EXIT_X86)
        out = build_sim(prog, setup_config("MaFIN-x86")).run()
        assert out.reason == "killed" and out.signal == "SIGFPE"

    def test_bad_load_kills(self):
        prog = assemble_x86("""
  li r1, 0
  load r0, [r1+0]
""" + EXIT_X86)
        out = build_sim(prog, setup_config("GeFIN-x86")).run()
        assert out.reason == "killed" and out.signal == "SIGSEGV"

    def test_store_to_code_kills(self):
        prog = assemble_x86("""
  li r1, 4096
  li r0, 1
  store [r1+0], r0
""" + EXIT_X86)
        out = build_sim(prog, setup_config("GeFIN-x86")).run()
        assert out.reason == "killed" and out.signal == "SIGSEGV"

    @pytest.mark.parametrize("setup", ("MaFIN-x86", "GeFIN-x86"))
    def test_wrong_path_fault_is_harmless(self, setup):
        # A first-seen taken branch is predicted not-taken (2-bit
        # counters start weakly-not-taken), so the fall-through — a null
        # dereference — is fetched and speculatively executed, then
        # squashed.  The architectural run must still exit cleanly.
        prog = assemble_x86("""
  li r1, 0
  li r2, 1
  cmp r2, 1
  jeq good
  load r0, [r1+0]
good:
""" + EXIT_X86)
        out = build_sim(prog, setup_config(setup)).run()
        assert out.reason == "exit"

    def test_arm_unaligned_word_logs_due_event(self):
        from tests.helpers import assemble_arm, EXIT_ARM
        prog = assemble_arm("""
  li r1, =buf
  add r1, r1, 1
  li r0, 77
  str r0, [r1+0]
  ldr r2, [r1+0]
""" + EXIT_ARM, data="buf: .space 16\n")
        out = build_sim(prog, setup_config("GeFIN-ARM")).run()
        assert out.reason == "exit"
        assert "align-fixup" in out.events

    def test_recursive_calls_exercise_ras(self):
        out = tiny_sim_outcome("GeFIN-x86")
        assert out.stats["ras_predictions"] > 0


class TestPaperConfigs:
    def test_paper_sizes_table2(self):
        m = paper_config("marss", "x86")
        assert m.rob_size == 64 and m.lsq_unified and m.lsq_size == 32
        assert m.l1d.size == 32 * 1024 and m.l2.size == 1024 * 1024
        g = paper_config("gem5", "arm")
        assert g.rob_size == 40 and not g.lsq_unified
        assert g.btb_direct.entries == 2048 and g.btb_direct.assoc == 1
        assert g.int_alus == 2  # ARM: 2 int ALUs per Table II

    def test_gem5_x86_fu_counts(self):
        g = paper_config("gem5", "x86")
        assert g.int_alus == 6 and g.complex_alus == 2

    def test_marss_is_x86_only(self):
        with pytest.raises(ValueError):
            paper_config("marss", "arm")

    def test_summary_has_table2_rows(self):
        rows = paper_config("gem5", "x86").summary()
        assert rows["ROB entries"] == "40"
        assert "unified" not in rows["Load/Store Queue entries"]
        assert "32KB" in rows["L1 Data Cache"]

    def test_setup_labels(self):
        assert setup_config("MaFIN-x86").label == "MaFIN-x86"
        assert setup_config("GeFIN-ARM").isa == "arm"
        with pytest.raises(ValueError):
            setup_config("NoSuch-Setup")

    def test_scaled_keeps_organization(self):
        p = paper_config("gem5", "x86")
        s = scaled_config("gem5", "x86")
        assert s.l1d.assoc == p.l1d.assoc
        assert s.l2.assoc == p.l2.assoc
        assert s.l1d.line_size == p.l1d.line_size
        assert s.rob_size == p.rob_size
