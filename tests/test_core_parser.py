"""Unit tests for the Parser (fault-effect classification policies)."""

import pytest

from repro.core.outcome import (ASSERT, CRASH, DUE, MASKED, SDC, TIMEOUT,
                                GoldenReference, InjectionRecord)
from repro.core.parser import (DEFAULT_POLICY, ParserPolicy, classify,
                               classify_all, vulnerability)

GOLDEN = GoldenReference(cycles=1000, exit_code=0, output_hex="aabbccdd",
                         events=[])


def record(**kw):
    args = dict(set_id=0, masks=[], reason="exit", exit_code=0,
                output_hex="aabbccdd", events=[], cycles=900)
    args.update(kw)
    return InjectionRecord(**args)


class TestBaseClassification:
    def test_masked(self):
        assert classify(record(), GOLDEN) == MASKED

    def test_sdc_on_output_mismatch(self):
        assert classify(record(output_hex="aabbccdE"), GOLDEN) == SDC

    def test_sdc_on_exit_code_mismatch(self):
        assert classify(record(exit_code=1), GOLDEN) == SDC

    def test_due_on_extra_events(self):
        r = record(events=["enosys"])
        assert classify(r, GOLDEN) == DUE

    def test_due_with_corrupt_output_still_due(self):
        r = record(events=["align-fixup"], output_hex="00")
        assert classify(r, GOLDEN) == DUE

    def test_timeouts(self):
        assert classify(record(reason="deadlock"), GOLDEN) == TIMEOUT
        assert classify(record(reason="cycle-limit"), GOLDEN) == TIMEOUT

    def test_crashes(self):
        assert classify(record(reason="killed", signal="SIGSEGV"),
                        GOLDEN) == CRASH
        assert classify(record(reason="panic"), GOLDEN) == CRASH
        assert classify(record(reason="sim-crash"), GOLDEN) == CRASH

    def test_assert(self):
        assert classify(record(reason="assert"), GOLDEN) == ASSERT

    def test_early_stop_is_masked(self):
        r = record(reason="exit", early_stop="overwritten",
                   output_hex="whatever")
        assert classify(r, GOLDEN) == MASKED

    def test_unknown_reason(self):
        with pytest.raises(ValueError):
            classify(record(reason="vanished"), GOLDEN)

    def test_golden_events_must_match(self):
        golden = GoldenReference(cycles=10, exit_code=0, output_hex="",
                                 events=["align-fixup"])
        # Same events as golden: masked even though events are non-empty.
        r = record(output_hex="", events=["align-fixup"])
        assert classify(r, golden) == MASKED
        # Missing expected event: a deviation, classified DUE.
        r2 = record(output_hex="", events=[])
        assert classify(r2, golden) == DUE


class TestPolicies:
    def test_coarse(self):
        policy = ParserPolicy(coarse=True)
        assert classify(record(), GOLDEN, policy) == MASKED
        assert classify(record(reason="assert"), GOLDEN, policy) == \
            "Non-Masked"
        assert policy.classes() == (MASKED, "Non-Masked")

    def test_split_due(self):
        policy = ParserPolicy(split_due=True)
        true_due = record(events=["enosys"], output_hex="00")
        false_due = record(events=["enosys"])
        assert classify(true_due, GOLDEN, policy) == "DUE (true-DUE)"
        assert classify(false_due, GOLDEN, policy) == "DUE (false-DUE)"

    def test_sim_crash_regrouped_into_assert(self):
        policy = ParserPolicy(sim_crash_as_assert=True)
        assert classify(record(reason="sim-crash"), GOLDEN, policy) == ASSERT
        assert classify(record(reason="killed"), GOLDEN, policy) == CRASH

    def test_split_crash(self):
        policy = ParserPolicy(split_crash=True)
        assert classify(record(reason="killed"), GOLDEN, policy) == \
            "Crash (process)"
        assert classify(record(reason="panic"), GOLDEN, policy) == \
            "Crash (system)"
        assert classify(record(reason="sim-crash"), GOLDEN, policy) == \
            "Crash (simulator)"

    def test_split_timeout(self):
        policy = ParserPolicy(split_timeout=True)
        assert classify(record(reason="deadlock"), GOLDEN, policy) == \
            "Timeout (deadlock)"
        assert classify(record(reason="cycle-limit"), GOLDEN, policy) == \
            "Timeout (livelock)"

    def test_policy_classes_cover_all_outputs(self):
        for policy in (DEFAULT_POLICY, ParserPolicy(split_due=True),
                       ParserPolicy(split_crash=True),
                       ParserPolicy(split_timeout=True),
                       ParserPolicy(sim_crash_as_assert=True),
                       ParserPolicy(split_crash=True,
                                    sim_crash_as_assert=True)):
            classes = policy.classes()
            for reason in ("exit", "killed", "panic", "sim-crash",
                           "deadlock", "cycle-limit", "assert"):
                got = classify(record(reason=reason), GOLDEN, policy)
                assert got in classes, (reason, got, classes)


class TestAggregation:
    def test_classify_all_counts(self):
        records = [record(), record(output_hex="00"),
                   record(reason="assert"), record(reason="killed"),
                   record(events=["enosys"])]
        counts = classify_all(records, GOLDEN)
        assert counts[MASKED] == 1 and counts[SDC] == 1
        assert counts[ASSERT] == 1 and counts[CRASH] == 1
        assert counts[DUE] == 1
        assert counts[TIMEOUT] == 0

    def test_vulnerability(self):
        counts = {MASKED: 75, SDC: 20, CRASH: 5}
        assert vulnerability(counts) == pytest.approx(0.25)
        assert vulnerability({}) == 0.0
        assert vulnerability({MASKED: 10}) == 0.0

    def test_reclassification_without_rerun(self):
        """§III.B: the same logs yield different groupings for free."""
        records = [record(reason="sim-crash"), record(reason="assert")]
        default = classify_all(records, GOLDEN)
        regrouped = classify_all(records, GOLDEN,
                                 ParserPolicy(sim_crash_as_assert=True))
        assert default[ASSERT] == 1 and default[CRASH] == 1
        assert regrouped[ASSERT] == 2 and regrouped[CRASH] == 0
