"""Tests for the MaFIN/GeFIN facades and the figure reporting layer."""

import pytest

from repro.core.campaign import CampaignResult
from repro.core.outcome import (ASSERT, CRASH, MASKED, SDC,
                                GoldenReference, InjectionRecord)
from repro.core.report import SETUP_SHORT, SETUPS, FigureResult
from repro.injectors.gefin import GeFIN
from repro.injectors.mafin import MaFIN


class TestFacades:
    def test_mafin_is_x86_marss(self):
        m = MaFIN()
        assert m.config.name == "marss"
        assert m.isa == "x86"
        assert m.setup_label == "MaFIN-x86"

    def test_gefin_isas(self):
        assert GeFIN("x86").config.isa == "x86"
        assert GeFIN("arm").setup_label == "GeFIN-ARM"
        with pytest.raises(ValueError):
            GeFIN("riscv")

    def test_structures_table4(self):
        mafin = set(MaFIN().structures())
        gefin = set(GeFIN("x86").structures())
        # Common Table IV rows.
        for name in ("lsq", "iq", "int_rf", "fp_rf", "l1d", "l1d_tag",
                     "l1i", "l1i_tag", "l2", "l2_tag", "dtlb", "itlb",
                     "btb"):
            assert name in mafin and name in gefin
        # MaFIN's additions (the paper's "Modified"/"New" rows).
        assert {"l1d_pref", "l1i_pref", "btb_ind"} <= mafin
        assert not {"l1d_pref", "l1i_pref", "btb_ind"} & gefin

    def test_features_table1(self):
        for inj in (MaFIN(), GeFIN("arm")):
            feats = inj.features()
            assert feats["full_system"]
            assert feats["targets_all_major_structures"]
            assert set(feats["fault_models"]) >= {"transient",
                                                  "intermittent",
                                                  "permanent"}
        assert GeFIN.isas_supported() == ["x86", "arm"]
        assert MaFIN.isas_supported() == ["x86"]

    def test_build_campaign_object(self):
        campaign = MaFIN().build_campaign("sha", "lsq", seed=3)
        assert campaign.structure == "lsq"
        assert campaign.config.label == "MaFIN-x86"


def _fake_result(setup, benchmark, reasons):
    golden = GoldenReference(cycles=100, exit_code=0, output_hex="00",
                             events=[])
    res = CampaignResult(setup=setup, benchmark=benchmark, structure="l1d",
                         golden=golden)
    for i, reason in enumerate(reasons):
        output_hex = ""
        if reason == "sdc":
            reason, output_hex = "exit", "ff"
        elif reason == "ok":
            reason, output_hex = "exit", "00"
        res.records.append(InjectionRecord(
            set_id=i, masks=[], reason=reason, exit_code=0, events=[],
            output_hex=output_hex))
    return res


class TestFigureResult:
    def make_fig(self):
        fig = FigureResult("l1d", benchmarks=("bm1", "bm2"))
        fig.add(_fake_result("MaFIN-x86", "bm1",
                             ["ok", "ok", "sdc", "assert"]))
        fig.add(_fake_result("MaFIN-x86", "bm2", ["ok", "ok", "ok", "sdc"]))
        fig.add(_fake_result("GeFIN-x86", "bm1",
                             ["ok", "sdc", "sdc", "killed"]))
        fig.add(_fake_result("GeFIN-x86", "bm2", ["ok", "ok", "sdc", "sdc"]))
        fig.add(_fake_result("GeFIN-ARM", "bm1", ["ok"] * 4))
        fig.add(_fake_result("GeFIN-ARM", "bm2", ["ok", "ok", "ok", "sdc"]))
        return fig

    def test_percentages(self):
        fig = self.make_fig()
        pct = fig.percentages("bm1", "MaFIN-x86")
        assert pct[MASKED] == 50.0
        assert pct[SDC] == 25.0
        assert pct[ASSERT] == 25.0

    def test_average_across_benchmarks(self):
        fig = self.make_fig()
        avg = fig.average("MaFIN-x86")
        assert avg[MASKED] == pytest.approx(62.5)
        assert avg[SDC] == pytest.approx(25.0)

    def test_vulnerabilities(self):
        fig = self.make_fig()
        assert fig.vulnerability("bm1", "GeFIN-x86") == pytest.approx(75.0)
        assert fig.average_vulnerability("GeFIN-ARM") == pytest.approx(12.5)

    def test_render_contains_all_rows(self):
        text = self.make_fig().render()
        assert "l1d" in text
        for label in ("bm1", "bm2", "AVG", "M-x86", "G-x86", "G-ARM"):
            assert label in text

    def test_summary_rows(self):
        rows = self.make_fig().summary_rows()
        setups = {r["setup"] for r in rows}
        assert setups == {"M-x86", "G-x86", "G-ARM"}
        avg_rows = [r for r in rows if r["benchmark"] == "AVG"]
        assert len(avg_rows) == 3
        m = next(r for r in avg_rows if r["setup"] == "M-x86")
        assert m["vulnerability"] == pytest.approx(37.5)

    def test_setup_labels_cover_paper(self):
        assert SETUPS == ("MaFIN-x86", "GeFIN-x86", "GeFIN-ARM")
        assert SETUP_SHORT["GeFIN-ARM"] == "G-ARM"
