"""Study specs, plan expansion, unit addressing and sharding."""

import pytest

from repro.sched import CampaignPlan, StudySpec, WorkUnit, shard_of


def small_spec(**over):
    base = dict(setups=("MaFIN-x86", "GeFIN-x86"),
                benchmarks=("sha", "qsort"),
                structures=("int_rf", "l1d"),
                fault_types=("transient",),
                injections=4)
    base.update(over)
    return StudySpec(**base)


class TestWorkUnit:
    def test_unit_id_shape(self):
        u = WorkUnit("MaFIN-x86", "sha", "l1d", "transient")
        assert u.unit_id == "MaFIN-x86/sha/l1d/transient"
        assert "/" not in u.file_id
        assert u.file_id.replace("__", "/") == u.unit_id

    def test_from_id_roundtrip(self):
        u = WorkUnit("GeFIN-x86", "qsort", "int_rf", "permanent")
        assert WorkUnit.from_id(u.unit_id) == u
        assert WorkUnit.from_dict(u.to_dict()) == u

    def test_from_id_malformed(self):
        with pytest.raises(ValueError):
            WorkUnit.from_id("only/three/parts")

    def test_seed_deterministic_and_distinct(self):
        a = WorkUnit("MaFIN-x86", "sha", "l1d")
        b = WorkUnit("MaFIN-x86", "sha", "int_rf")
        assert a.seed(1) == a.seed(1)
        assert a.seed(1) != b.seed(1)
        assert a.seed(1) != a.seed(2)
        assert 0 <= a.seed(12345) <= 0x7FFFFFFF


class TestStudySpec:
    def test_validate_rejects_empty_axes(self):
        with pytest.raises(ValueError):
            small_spec(benchmarks=()).validate()

    def test_validate_rejects_unknown_fault_type(self):
        with pytest.raises(ValueError):
            small_spec(fault_types=("cosmic",)).validate()

    def test_validate_rejects_nonpositive_injections(self):
        with pytest.raises(ValueError):
            small_spec(injections=0).validate()

    def test_roundtrip_preserves_hash(self):
        spec = small_spec()
        clone = StudySpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash == spec.spec_hash

    def test_hash_changes_with_content(self):
        assert small_spec().spec_hash != small_spec(seed=2).spec_hash
        assert small_spec().spec_hash != \
            small_spec(injections=5).spec_hash


class TestCampaignPlan:
    def test_full_grid_expansion(self):
        plan = CampaignPlan.from_spec(small_spec())
        assert len(plan) == 2 * 2 * 2 * 1
        assert len(set(plan.unit_ids())) == len(plan)
        assert plan.unit("MaFIN-x86/sha/l1d/transient").structure == "l1d"
        with pytest.raises(KeyError):
            plan.unit("nope/nope/nope/nope")

    def test_shards_partition_the_grid(self):
        plan = CampaignPlan.from_spec(small_spec())
        seen = []
        for i in range(3):
            seen.extend(plan.shard(i, 3).unit_ids())
        assert sorted(seen) == sorted(plan.unit_ids())  # exhaustive
        assert len(seen) == len(set(seen))              # disjoint

    def test_shard_is_deterministic(self):
        plan = CampaignPlan.from_spec(small_spec())
        assert plan.shard(0, 2).unit_ids() == plan.shard(0, 2).unit_ids()
        for uid in plan.shard(1, 2).unit_ids():
            assert shard_of(uid, 2) == 1

    def test_shard_index_bounds(self):
        plan = CampaignPlan.from_spec(small_spec())
        with pytest.raises(ValueError):
            plan.shard(2, 2)
        with pytest.raises(ValueError):
            shard_of("x", 0)

    def test_sharded_plan_still_knows_full_grid(self):
        plan = CampaignPlan.from_spec(small_spec())
        sub = plan.shard(0, 2)
        assert sorted(sub.grid_ids()) == sorted(plan.unit_ids())
        assert sub.shard_id == (0, 2)
