"""Unit tests for the MiniC AST interpreter (the compiler oracle)."""

import struct

import pytest

from repro.lang.interp import MiniCError, interpret


def outs(src):
    code, out = interpret(src)
    vals = struct.unpack(f"<{len(out) // 4}I", out)
    return code, list(vals)


class TestSemantics:
    def test_arith_and_output(self):
        code, vals = outs("func main() { out(2 + 3 * 4); return 1; }")
        assert code == 1 and vals == [14]

    def test_division_truncates_toward_zero(self):
        _, vals = outs("func main() { out(0 - (7 / 2)); out((0-7) / 2); }")
        assert vals[0] == vals[1] == 0xFFFFFFFD  # both are -3

    def test_mod_sign_follows_dividend(self):
        _, vals = outs("func main() { out((0-7) % 3); out(7 % (0-3)); }")
        assert [v - (1 << 32) if v > 2**31 else v for v in vals] == [-1, 1]

    def test_division_by_zero(self):
        with pytest.raises(MiniCError, match="zero"):
            interpret("func main() { var x = 0; out(1 / x); }")

    def test_wraparound(self):
        _, vals = outs("func main() { out(4294967295 + 1); }")
        assert vals == [0]

    def test_shift_semantics(self):
        _, vals = outs("func main() { out(1 << 33); out(6 >> 1); }")
        assert vals == [2, 3]  # counts masked to 5 bits, >> is logical

    def test_logical_right_shift_of_negative(self):
        _, vals = outs("func main() { out((0 - 2) >> 1); }")
        assert vals == [0x7FFFFFFF]

    def test_comparisons_are_signed(self):
        _, vals = outs("func main() { out((0 - 1) < 1); }")
        assert vals == [1]

    def test_short_circuit_and(self):
        src = """
        int hits = 0;
        func bump() { hits = hits + 1; return 1; }
        func main() {
          var x = 0;
          if (x != 0 && bump()) { }
          out(hits);
          if (x == 0 || bump()) { }
          out(hits);
        }
        """
        _, vals = outs(src)
        assert vals == [0, 0]

    def test_booleans_are_zero_one(self):
        _, vals = outs("func main() { out(3 < 5); out(!7); out(!0); }")
        assert vals == [1, 0, 1]

    def test_recursion(self):
        src = """
        func fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        func main() { out(fact(6)); }
        """
        _, vals = outs(src)
        assert vals == [720]

    def test_arrays_and_globals(self):
        src = """
        int a[4] = {10, 20};
        int g = 5;
        func main() {
          a[2] = g + a[1];
          g = a[2] * 2;
          out(a[0]); out(a[2]); out(a[3]); out(g);
        }
        """
        _, vals = outs(src)
        assert vals == [10, 25, 0, 50]

    def test_break_continue(self):
        src = """
        func main() {
          var i;
          var s = 0;
          for (i = 0; i < 10; i = i + 1) {
            if (i == 3) { continue; }
            if (i == 6) { break; }
            s = s + i;
          }
          out(s);
        }
        """
        _, vals = outs(src)
        assert vals == [0 + 1 + 2 + 4 + 5]

    def test_while_loop(self):
        _, vals = outs(
            "func main() { var i = 0; while (i < 5) { i = i + 1; } out(i); }")
        assert vals == [5]

    def test_out_of_bounds_index(self):
        with pytest.raises(MiniCError, match="bounds"):
            interpret("int a[2]; func main() { out(a[5]); }")

    def test_negative_index(self):
        with pytest.raises(MiniCError, match="bounds"):
            interpret("int a[2]; func main() { out(a[0 - 1]); }")

    def test_step_limit(self):
        from repro.lang.interp import Interpreter
        from repro.lang.parser import parse
        interp = Interpreter(parse("func main() { while (1) { } }"),
                             max_steps=1000)
        with pytest.raises(MiniCError, match="limit"):
            interp.run()

    def test_missing_return_yields_zero(self):
        code, _ = outs("func main() { }")
        assert code == 0

    def test_param_passing(self):
        src = """
        func combine(a, b, c, d) { return a * 1000 + b * 100 + c * 10 + d; }
        func main() { out(combine(1, 2, 3, 4)); }
        """
        _, vals = outs(src)
        assert vals == [1234]
