"""Integration tests for the 10 MiBench-like benchmark kernels."""

import pytest

from repro.bench import inputs, suite
from repro.lang.interp import interpret
from repro.sim.functional import run_program

ALL = suite.benchmark_names()


class TestRegistry:
    def test_paper_benchmark_set(self):
        assert ALL == ("djpeg", "search", "smooth", "edge", "corner",
                       "sha", "fft", "qsort", "cjpeg", "caes")

    def test_descriptions(self):
        for name in ALL:
            assert len(suite.describe(name)) > 10

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            suite.minic_source("doom")

    def test_sources_are_deterministic(self):
        for name in ALL:
            assert suite.minic_source(name) == suite.minic_source(name)


class TestInputs:
    def test_lcg_deterministic(self):
        assert inputs.rand_ints(10, 0, 100, 5) == \
            inputs.rand_ints(10, 0, 100, 5)
        assert inputs.rand_ints(10, 0, 100, 5) != \
            inputs.rand_ints(10, 0, 100, 6)

    def test_rand_bounds(self):
        vals = inputs.rand_ints(500, -5, 7, 1)
        assert min(vals) >= -5 and max(vals) <= 7

    def test_image_has_structure(self):
        img = inputs.image(16, 16, 3)
        assert len(img) == 256
        assert all(0 <= p <= 255 for p in img)
        assert len(set(img)) > 32  # not constant

    def test_text_corpus_words(self):
        text = bytes(inputs.text_corpus(200, 2))
        assert b"the" in text or b"fox" in text or b"quick" in text

    def test_format_array(self):
        s = inputs.format_array("xs", [1, 2, 3], pad_to=5)
        assert s == "int xs[5] = {1, 2, 3};"


@pytest.mark.parametrize("name", ALL)
def test_compiled_output_matches_interpreter_both_isas(name):
    """Each kernel: interpreter output == compiled x86 == compiled ARM."""
    src = suite.minic_source(name)
    code, out = interpret(src)
    assert out, f"{name} produced no output"
    for isa in ("x86", "arm"):
        res = run_program(suite.program(name, isa))
        assert res.reason == "exit", (name, isa, res.reason)
        assert res.exit_code == code
        assert res.output == out, (name, isa)


def test_aes_kernel_matches_fips197_vector():
    """caes implements real AES-128: check the FIPS-197 test vector."""
    from repro.bench.programs import caes
    key = list(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
    pt = list(bytes.fromhex("00112233445566778899aabbccddeeff"))
    src = caes.source(key=key, plaintext=pt)
    _code, out = interpret(src)
    # The kernel emits big-endian words of the ciphertext.
    got = b"".join(int.from_bytes(out[i:i + 4], "little").to_bytes(4, "big")
                   for i in range(0, 16, 4))
    assert got.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"


def test_sha_kernel_matches_hashlib():
    """sha implements real SHA-1 (deterministic message, all rounds)."""
    import hashlib
    from repro.bench.inputs import rand_bytes
    from repro.bench.programs import sha
    msg = bytes(rand_bytes(32, seed=0x5AA5))
    _code, out = interpret(sha.source())
    digest = b"".join(
        int.from_bytes(out[i:i + 4], "little").to_bytes(4, "big")
        for i in range(0, 20, 4))
    assert digest == hashlib.sha1(msg).digest()


def test_code_density_differs_between_isas():
    """ARM fixed 4-byte encoding yields larger code than compact x86 —
    the Remark 7 mechanism (more ARM L1I replacement traffic)."""
    bigger = 0
    for name in ALL:
        if suite.program(name, "arm").code_size > \
                suite.program(name, "x86").code_size:
            bigger += 1
    assert bigger == len(ALL)


def test_x86_has_more_memory_traffic():
    """Register-starved x86 code does more loads (Remark 3/5 texture)."""
    more = 0
    for name in ALL:
        x = run_program(suite.program(name, "x86")).stats
        a = run_program(suite.program(name, "arm")).stats
        if x["loads"] > a["loads"]:
            more += 1
    assert more >= 8  # allow a kernel or two to buck the trend
