"""Unit tests for the ACE-style occupancy estimator."""

import pytest

from repro.core.ace import AceEstimator, AceResult
from repro.sim.config import setup_config

from tests.helpers import tiny_program


@pytest.fixture(scope="module")
def result():
    config = setup_config("GeFIN-x86")
    est = AceEstimator(config, tiny_program("x86"), sample_interval=100)
    return est.run()


class TestAceEstimator:
    def test_estimates_bounded(self, result):
        for structure, value in result.estimates.items():
            assert 0.0 <= value <= 1.0, structure

    def test_covers_default_structures(self, result):
        assert set(result.estimates) == {"int_rf", "l1d", "l1i", "l2",
                                         "lsq"}

    def test_samples_taken(self, result):
        assert result.samples >= 3
        assert result.cycles > 0

    def test_regfile_occupancy_low(self, result):
        # 256 physical registers, ~20 architectural + a few in flight.
        assert result.avf("int_rf") < 0.5

    def test_l1i_has_live_content(self, result):
        # Code is resident while it runs.
        assert result.avf("l1i") > 0.05

    def test_unknown_structure_rejected(self):
        config = setup_config("MaFIN-x86")
        est = AceEstimator(config, tiny_program("x86"),
                           structures=("tardis",))
        with pytest.raises(KeyError):
            est.run()

    def test_repr(self, result):
        assert "l1d=" in repr(result)

    def test_ace_exceeds_injection_on_l1i(self, result):
        """The headline property: conservative >= measured."""
        from repro.core.dispatcher import InjectorDispatcher
        from repro.core.fault import FaultMask, FaultSet
        from repro.core.outcome import MASKED
        from repro.core.parser import classify
        config = setup_config("GeFIN-x86")
        d = InjectorDispatcher(config, tiny_program("x86"))
        d.run_golden()
        non_masked = 0
        n = 12
        for i in range(n):
            fs = FaultSet(masks=(FaultMask("l1i", (i * 7) % 16,
                                           (i * 131) % 512,
                                           50 + i * 70),), set_id=i)
            rec = d.inject(fs)
            if classify(rec, d.golden) != MASKED:
                non_masked += 1
        assert result.avf("l1i") >= non_masked / n - 0.25
