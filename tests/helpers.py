"""Shared fixtures/utilities for the test suite.

Provides small MiniC workloads (much faster than the full benchmark
kernels) compiled once per ISA, plus cached simulators and campaign
dispatchers so timing-heavy tests stay quick.
"""

from __future__ import annotations

from functools import lru_cache

from repro.isa.assembler import assemble
from repro.lang.compiler import compile_program
from repro.sim.config import setup_config
from repro.sim.functional import run_program
from repro.sim.gem5 import build_sim

# A compact workload with loads, stores, calls, branches and output —
# roughly 1.5k instructions, cheap enough to run dozens of times.
TINY_SRC = """
int a[24];
int N = 24;

func mix(x, y) {
  return (x * 31 + y) ^ (x >> 3);
}

func main() {
  var i;
  for (i = 0; i < N; i = i + 1) {
    a[i] = mix(i, i * 7 + 3);
  }
  var acc = 0;
  for (i = 0; i < N; i = i + 1) {
    if (a[i] % 3 == 0) {
      acc = acc + a[i];
    } else {
      acc = acc - (a[i] / 5);
    }
  }
  out(acc);
  out(a[0]);
  out(a[N - 1]);
  return 0;
}
"""


@lru_cache(maxsize=None)
def tiny_program(isa: str):
    return compile_program(TINY_SRC, isa)


@lru_cache(maxsize=None)
def tiny_reference(isa: str):
    return run_program(tiny_program(isa))


@lru_cache(maxsize=None)
def tiny_sim_outcome(setup: str):
    config = setup_config(setup)
    sim = build_sim(tiny_program(config.isa), config)
    return sim.run()


def fresh_sim(setup: str):
    config = setup_config(setup)
    return build_sim(tiny_program(config.isa), config)


def assemble_x86(body: str, data: str = ""):
    src = ".text\n_start:\n" + body + "\n.data\n" + data
    return assemble(src, "x86")


def assemble_arm(body: str, data: str = ""):
    src = ".text\n_start:\n" + body + "\n.data\n" + data
    return assemble(src, "arm")


EXIT_X86 = """
  li r0, 2
  li r1, 0
  syscall
"""

EXIT_ARM = """
  li r0, 2
  li r1, 0
  svc
"""
