"""Unit and property tests for the cache model (both write policies)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.cache import Cache


def make_cache(mirror=False, size=1024, assoc=2, line=64):
    return Cache("c", size, assoc, line, mirror=mirror)


class TestGeometry:
    def test_sets_and_bits(self):
        c = make_cache(size=2048, assoc=4, line=64)
        assert c.sets == 8
        assert c.off_bits == 6 and c.set_bits == 3

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache("c", 1000, 3, 64)

    def test_address_mapping_roundtrip(self):
        c = make_cache()
        addr = 0x12340
        c.fill(addr, bytes(64))
        way = c.lookup(addr)
        line = c.line_index(c.set_of(addr), way)
        assert c.addr_of_line(line) == c.line_base(addr)


class TestHitMissLRU:
    def test_fill_then_hit(self):
        c = make_cache()
        assert c.lookup(0x1000) is None
        c.fill(0x1000, bytes(64))
        assert c.lookup(0x1000) is not None

    def test_lru_eviction_order(self):
        c = make_cache(size=256, assoc=2, line=64)  # 2 sets
        # Three lines mapping to set 0 (set stride = 128).
        a, b, d = 0x0000, 0x0100, 0x0200
        c.fill(a, bytes(64))
        c.fill(b, bytes(64))
        c.lookup(a)  # touch a, making b LRU
        c.touch(c.set_of(a), c.lookup(a))
        evicted = c.fill(d, bytes(64))
        assert evicted is not None
        assert evicted[0] == b

    def test_victim_prefers_invalid_way(self):
        c = make_cache(size=256, assoc=2, line=64)
        c.fill(0x0000, bytes(64))
        assert c.fill(0x0100, bytes(64)) is None  # used the empty way

    def test_occupancy(self):
        c = make_cache()
        assert c.occupancy() == 0
        c.fill(0x0, bytes(64))
        c.fill(0x1000, bytes(64))
        assert c.occupancy() == 2


class TestWriteBackMode:
    def test_dirty_eviction_returns_data(self):
        c = make_cache(mirror=False, size=256, assoc=1, line=64)
        c.fill(0x0000, bytes(64))
        way = c.lookup(0x0000)
        c.write_data(0x0004, b"\xAB\xCD", way)
        evicted = c.fill(0x0400, bytes(64))  # same set, evicts dirty line
        addr, data, dirty = evicted
        assert dirty and data[4:6] == b"\xab\xcd"

    def test_clean_eviction_has_no_data(self):
        c = make_cache(mirror=False, size=256, assoc=1, line=64)
        c.fill(0x0000, bytes(64))
        addr, data, dirty = c.fill(0x0400, bytes(64))
        assert not dirty and data is None

    def test_read_data_returns_written(self):
        c = make_cache(mirror=False)
        c.fill(0x40, bytes(64))
        way = c.lookup(0x40)
        c.write_data(0x48, b"\x11\x22\x33\x44", way)
        assert c.read_data(0x48, 4, way) == b"\x11\x22\x33\x44"


class TestMirrorMode:
    def test_writes_do_not_set_dirty(self):
        c = make_cache(mirror=True, size=256, assoc=1, line=64)
        c.fill(0x0000, bytes(64))
        way = c.lookup(0x0000)
        c.write_data(0x0000, b"\xFF", way)
        addr, data, dirty = c.fill(0x0400, bytes(64))
        assert not dirty and data is None  # discarded silently

    def test_resident_fault_dies_on_eviction(self):
        c = make_cache(mirror=True, size=256, assoc=1, line=64)
        c.fill(0x0000, bytes(64))
        line = c.line_index(0, 0)
        c.data.flip(line, 0)
        c.fill(0x0400, bytes(64))      # evict without reading
        c.fill(0x0000, bytes(64))      # refill clean
        way = c.lookup(0x0000)
        assert c.read_data(0x0000, 1, way) == b"\x00"


class TestTagFaults:
    def test_valid_bit_flip_drops_line(self):
        c = make_cache()
        c.fill(0x1000, bytes(64))
        way = c.lookup(0x1000)
        line = c.line_index(c.set_of(0x1000), way)
        c.tags.flip(line, c.tag_bits)  # the valid bit
        assert c.lookup(0x1000) is None

    def test_tag_bit_flip_false_miss(self):
        c = make_cache()
        c.fill(0x1000, bytes(64))
        way = c.lookup(0x1000)
        line = c.line_index(c.set_of(0x1000), way)
        c.tags.flip(line, 0)
        assert c.lookup(0x1000) is None
        # ...and the flipped tag now matches a different address.
        ghost = 0x1000 ^ (1 << c.tag_shift)
        assert c.lookup(ghost) is not None

    def test_sites_expose_liveness(self):
        c = make_cache()
        data_site, tag_site = c.data_site(), c.tag_site()
        assert not data_site.live(0)
        c.fill(0x0, bytes(64))
        line = c.line_index(c.set_of(0x0), c.lookup(0x0))
        assert data_site.live(line)
        assert tag_site.live(line)


class TestAgainstFlatMemoryReference:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=2047),
                              st.integers(min_value=0, max_value=255)),
                    min_size=1, max_size=120))
    def test_writeback_cache_matches_reference(self, ops):
        """Random byte ops through a write-back cache + backing store
        must equal a flat reference memory."""
        backing = bytearray(2048)
        ref = bytearray(2048)
        c = make_cache(mirror=False, size=256, assoc=2, line=64)

        def ensure(addr):
            if c.lookup(addr) is None:
                base = c.line_base(addr)
                evicted = c.fill(base, bytes(backing[base:base + 64]))
                if evicted is not None and evicted[2]:
                    eaddr, data, _ = evicted
                    backing[eaddr:eaddr + 64] = data
            return c.lookup(addr)

        for is_write, addr, val in ops:
            way = ensure(addr)
            if is_write:
                c.write_data(addr, bytes([val]), way)
                ref[addr] = val
            else:
                got = c.read_data(addr, 1, way)
                assert got == bytes([ref[addr]])
        # Flush everything and compare the full image.
        for set_idx in range(c.sets):
            for way in range(c.assoc):
                line = c.line_index(set_idx, way)
                if c.is_valid_line(line):
                    evicted = c.evict(set_idx, way)
                    if evicted and evicted[2]:
                        eaddr, data, _ = evicted
                        backing[eaddr:eaddr + 64] = data
        assert backing == ref
