"""Tests for the disassembler and the commit-trace utilities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import arm, x86
from repro.isa.assembler import assemble
from repro.isa.disasm import (disassemble_one, disassemble_program,
                              disassemble_range)
from repro.lang.compiler import compile_program
from repro.sim.config import setup_config
from repro.sim.trace import (first_divergence, functional_trace,
                             timing_commit_trace)

from tests.helpers import TINY_SRC, tiny_program


class TestDisassembleOne:
    def test_x86_basics(self):
        cases = [
            (x86.encode_alu_rr("add", 3, 5), "add r3, r5"),
            (x86.encode_mov_ri(2, -7), "mov r2, -7"),
            (x86.encode_mem("load", 1, 14, -8), "load r1, [r14-8]"),
            (x86.encode_mem("store", 2, 15, 4), "store [sp+4], r2"),
            (x86.encode_simple("push", 0), "push r0"),
            (x86.encode_simple("ret"), "ret"),
            (x86.encode_simple("syscall"), "syscall"),
        ]
        for raw, expected in cases:
            window = raw + bytes(x86.MAX_ILEN - len(raw))
            instr = x86.decode_window(window, 0x1000)
            assert disassemble_one(instr, "x86") == expected

    def test_x86_branch_target_absolute(self):
        raw = x86.encode_branch("jne", 0x10, short=True)
        instr = x86.decode_window(raw + bytes(4), 0x1000)
        assert disassemble_one(instr, "x86") == "jne 0x1012"

    def test_arm_basics(self):
        cases = [
            (arm.encode_alu_rr("add", 1, 2, 3), "add r1, r2, r3"),
            (arm.encode_alu_ri("sub", 4, 4, 12), "sub r4, r4, 12"),
            (arm.encode_mov_ri(0, -5), "mov r0, -5"),
            (arm.encode_mem("ldr", 1, 13, 8), "ldr r1, [sp+8]"),
            (arm.encode_mem("str", 2, 13, 0), "str r2, [sp+0]"),
            (arm.encode_simple("bx", arm.LR), "bx lr"),
            (arm.encode_simple("svc"), "svc"),
        ]
        for raw, expected in cases:
            instr = arm.decode_window(raw, 0x1000)
            assert disassemble_one(instr, "arm") == expected

    def test_undefined_bytes(self):
        instr = x86.decode_window(bytes([0xFF] + [0] * 5), 0x1000)
        assert "<ud>" in disassemble_one(instr, "x86")


class TestProgramListings:
    @pytest.mark.parametrize("isa", ["x86", "arm"])
    def test_listing_contains_symbols(self, isa):
        listing = disassemble_program(tiny_program(isa))
        assert "_start:" in listing
        assert "f_main:" in listing
        assert ("syscall" if isa == "x86" else "svc") in listing

    @pytest.mark.parametrize("isa", ["x86", "arm"])
    def test_roundtrip_reassembles_identically(self, isa):
        """assemble(disassemble(P)) reproduces P's code bytes."""
        prog = compile_program(TINY_SRC, isa)
        code = [s for s in prog.sections if s.executable][0]
        lines = ["_start:" if prog.entry == code.base else ""]
        lines = [".text", "_start:"]
        for pc, raw, text in disassemble_range(code.data, code.base,
                                               isa):
            lines.append("  " + text)
        re_prog = assemble("\n".join(lines) + "\n", isa,
                           code_base=code.base)
        re_code = [s for s in re_prog.sections if s.executable][0]
        assert re_code.data == code.data

    def test_disassemble_range_covers_all_bytes(self):
        prog = tiny_program("x86")
        code = [s for s in prog.sections if s.executable][0]
        total = sum(len(raw) for _pc, raw, _t in
                    disassemble_range(code.data, code.base, "x86"))
        assert total == len(code.data)


class TestCommitTraces:
    @pytest.mark.parametrize("setup", ["MaFIN-x86", "GeFIN-x86",
                                       "GeFIN-ARM"])
    def test_timing_commits_exactly_the_architectural_stream(self, setup):
        config = setup_config(setup)
        prog = tiny_program(config.isa)
        ref = functional_trace(prog)
        got, outcome = timing_commit_trace(prog, config)
        assert outcome.reason == "exit"
        div = first_divergence(ref[:len(got)], got)
        assert div is None, (div, ref[div - 2:div + 2], got[div - 2:div + 2])
        # The EXIT syscall raises mid-commit, so the recorder misses the
        # final commit group (at most one commit-width of instructions).
        assert len(ref) - len(got) <= config.commit_width + 1

    def test_first_divergence(self):
        assert first_divergence([1, 2, 3], [1, 2, 3]) is None
        assert first_divergence([1, 2, 3], [1, 9, 3]) == 1
        assert first_divergence([1, 2], [1, 2, 3]) == 2
