"""Property: random instruction streams survive asm → disasm → asm."""

from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble_range

REGS_X86 = [f"r{i}" for i in range(15)] + ["sp"]
REGS_ARM = [f"r{i}" for i in range(13)] + ["sp", "lr"]


def _x86_line(draw):
    kind = draw(st.sampled_from(["alu_rr", "alu_ri", "mov", "mem",
                                 "cmp", "push", "unary"]))
    r1 = draw(st.sampled_from(REGS_X86))
    r2 = draw(st.sampled_from(REGS_X86))
    imm = draw(st.integers(min_value=-1000, max_value=1000))
    disp = draw(st.integers(min_value=-200, max_value=200))
    op = draw(st.sampled_from(["add", "sub", "and", "or", "xor"]))
    if kind == "alu_rr":
        return f"{op} {r1}, {r2}"
    if kind == "alu_ri":
        return f"{op} {r1}, {imm}"
    if kind == "mov":
        return f"mov {r1}, {imm}"
    if kind == "mem":
        if draw(st.booleans()):
            return f"load {r1}, [{r2}{disp:+d}]"
        return f"store [{r2}{disp:+d}], {r1}"
    if kind == "cmp":
        return f"cmp {r1}, {r2}"
    if kind == "push":
        return draw(st.sampled_from([f"push {r1}", f"pop {r1}"]))
    return draw(st.sampled_from([f"not {r1}", f"neg {r1}"]))


def _arm_line(draw):
    kind = draw(st.sampled_from(["alu_rr", "alu_ri", "mov", "mem", "cmp"]))
    r1 = draw(st.sampled_from(REGS_ARM))
    r2 = draw(st.sampled_from(REGS_ARM))
    r3 = draw(st.sampled_from(REGS_ARM))
    imm = draw(st.integers(min_value=-1000, max_value=1000))
    disp = draw(st.integers(min_value=-200, max_value=200))
    op = draw(st.sampled_from(["add", "sub", "and", "or", "xor"]))
    if kind == "alu_rr":
        return f"{op} {r1}, {r2}, {r3}"
    if kind == "alu_ri":
        return f"{op} {r1}, {r2}, {imm}"
    if kind == "mov":
        return f"mov {r1}, {imm}"
    if kind == "mem":
        if draw(st.booleans()):
            return f"ldr {r1}, [{r2}{disp:+d}]"
        return f"str {r1}, [{r2}{disp:+d}]"
    return f"cmp {r1}, {r2}"


@st.composite
def _x86_programs(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    return [_x86_line(draw) for _ in range(n)]


@st.composite
def _arm_programs(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    return [_arm_line(draw) for _ in range(n)]


def _roundtrip(lines, isa):
    src = ".text\n_start:\n" + "\n".join("  " + l for l in lines) + "\n"
    prog = assemble(src, isa)
    code = [s for s in prog.sections if s.executable][0]
    redis = [".text", "_start:"]
    for _pc, _raw, text in disassemble_range(code.data, code.base, isa):
        redis.append("  " + text)
    prog2 = assemble("\n".join(redis) + "\n", isa, code_base=code.base)
    code2 = [s for s in prog2.sections if s.executable][0]
    assert code2.data == code.data, (lines, redis)


class TestRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(_x86_programs())
    def test_x86(self, lines):
        _roundtrip(lines, "x86")

    @settings(max_examples=40, deadline=None)
    @given(_arm_programs())
    def test_arm(self, lines):
        _roundtrip(lines, "arm")
