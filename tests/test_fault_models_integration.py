"""End-to-end behaviour of the three fault models on real runs.

Table III semantics at the system level: permanents dominate transients
in damage, intermittents sit in between depending on the window, and all
of them classify into the six §III.A classes without escaping the
campaign machinery.
"""

import pytest

from repro.core.dispatcher import InjectorDispatcher
from repro.core.fault import INTERMITTENT, PERMANENT, TRANSIENT, FaultMask, \
    FaultSet
from repro.core.outcome import MASKED
from repro.core.parser import classify
from repro.sim.config import setup_config

from tests.helpers import tiny_program


@pytest.fixture(scope="module")
def dispatcher():
    config = setup_config("GeFIN-x86")
    d = InjectorDispatcher(config, tiny_program("x86"))
    d.run_golden()
    return d


VALID_REASONS = {"exit", "killed", "panic", "deadlock", "cycle-limit",
                 "assert", "sim-crash"}


class TestTransient:
    def test_flip_in_dead_entry_is_masked_fast(self, dispatcher):
        # Register 255 is at the bottom of the free list: never live in
        # a short run.
        fs = FaultSet(masks=(FaultMask("int_rf", 255, 3, 200),))
        rec = dispatcher.inject(fs)
        assert rec.early_stop == "invalid-entry"
        assert classify(rec, dispatcher.golden) == MASKED

    def test_many_random_flips_classify(self, dispatcher):
        for i in range(8):
            fs = FaultSet(masks=(FaultMask("l1i", (i * 5) % 16,
                                           (i * 97) % 512, 100 + 80 * i),))
            rec = dispatcher.inject(fs)
            assert rec.reason in VALID_REASONS


class TestPermanent:
    def test_stuck_sp_bit_is_catastrophic(self, dispatcher):
        # The initial SP mapping is architectural register 15 → phys 15;
        # a permanently stuck high bit in it corrupts every stack access.
        fs = FaultSet(masks=(FaultMask("int_rf", 15, 17, 0,
                                       fault_type=PERMANENT,
                                       stuck_value=1),))
        rec = dispatcher.inject(fs, early_stop=False)
        assert rec.reason != "exit" or \
            rec.output_hex != dispatcher.golden.output_hex

    def test_stuck_at_current_value_is_masked(self, dispatcher):
        # Stuck-at-0 on a bit that is already 0 in a never-live register.
        fs = FaultSet(masks=(FaultMask("int_rf", 250, 1, 0,
                                       fault_type=PERMANENT,
                                       stuck_value=0),))
        rec = dispatcher.inject(fs, early_stop=False)
        assert rec.reason == "exit"
        assert classify(rec, dispatcher.golden) == MASKED


class TestIntermittent:
    def test_window_after_exit_is_masked(self, dispatcher):
        golden_cycles = dispatcher.golden.cycles
        fs = FaultSet(masks=(FaultMask("int_rf", 15, 28,
                                       golden_cycles + 1000,
                                       fault_type=INTERMITTENT,
                                       duration=50, stuck_value=1),))
        rec = dispatcher.inject(fs, early_stop=False)
        assert classify(rec, dispatcher.golden) == MASKED

    def test_long_window_on_sp_disturbs(self, dispatcher):
        fs = FaultSet(masks=(FaultMask("int_rf", 15, 15, 10,
                                       fault_type=INTERMITTENT,
                                       duration=10 ** 6, stuck_value=1),))
        rec = dispatcher.inject(fs, early_stop=False)
        assert rec.reason in VALID_REASONS
        assert rec.reason != "exit" or \
            rec.output_hex != dispatcher.golden.output_hex


class TestMultiFault:
    def test_multi_structure_set_applies_both(self, dispatcher):
        fs = FaultSet(masks=(
            FaultMask("l1d", 2, 40, 150),
            FaultMask("lsq", 1, 3, 300),
        ), set_id=77)
        rec = dispatcher.inject(fs)
        assert rec.reason in VALID_REASONS
        assert len(rec.masks) == 2

    def test_burst_in_one_line(self, dispatcher):
        masks = tuple(FaultMask("l1i", 4, bit, 120)
                      for bit in (8, 9, 10, 11))
        rec = dispatcher.inject(FaultSet(masks=masks))
        assert rec.reason in VALID_REASONS


class TestMarssAssertPath:
    def test_assert_reachable_under_l1i_faults(self):
        """MaFIN's dense decoder checking must be reachable: flipping
        opcode bits of hot instruction lines eventually asserts."""
        config = setup_config("MaFIN-x86")
        d = InjectorDispatcher(config, tiny_program("x86"))
        d.run_golden()
        reasons = set()
        for i in range(24):
            fs = FaultSet(masks=(FaultMask("l1i", i % 16, (i * 37) % 512,
                                           80 + i * 60),))
            reasons.add(d.inject(fs).reason)
        assert "assert" in reasons or "exit" in reasons
        # gem5 on the same experiment must never assert.
        config_g = setup_config("GeFIN-x86")
        dg = InjectorDispatcher(config_g, tiny_program("x86"))
        dg.run_golden()
        for i in range(24):
            fs = FaultSet(masks=(FaultMask("l1i", i % 16, (i * 37) % 512,
                                           80 + i * 60),))
            assert dg.inject(fs).reason != "assert"
