"""Property test: random programs commit identically on all executors.

For randomly generated MiniC programs, the architectural PC stream of
the functional interpreter must be committed verbatim by both timing
simulators — the deepest cross-validation in the suite (it caught the
store-forwarding age bug during development).
"""

from hypothesis import given, settings, strategies as st

from repro.lang.compiler import compile_program
from repro.sim.config import setup_config
from repro.sim.trace import (first_divergence, functional_trace,
                             timing_commit_trace)


@st.composite
def _programs(draw):
    n = draw(st.integers(min_value=4, max_value=8))
    init = [draw(st.integers(min_value=-40, max_value=40))
            for _ in range(n)]
    mul = draw(st.integers(min_value=1, max_value=7))
    cut = draw(st.integers(min_value=-20, max_value=20))
    return f"""
    int data[{n}] = {{{", ".join(str(v) for v in init)}}};
    func step(x) {{
      if (x > {cut}) {{ return x * {mul} - 1; }}
      return x + {mul};
    }}
    func main() {{
      var i;
      var acc = 0;
      for (i = 0; i < {n}; i = i + 1) {{
        data[i] = step(data[i]);
        acc = acc + data[i];
      }}
      out(acc);
      return acc & 255;
    }}
    """


class TestDifferentialCommitTraces:
    @settings(max_examples=6, deadline=None)
    @given(_programs())
    def test_random_programs_commit_identically(self, src):
        for setup in ("MaFIN-x86", "GeFIN-x86", "GeFIN-ARM"):
            config = setup_config(setup)
            prog = compile_program(src, config.isa)
            ref = functional_trace(prog)
            got, outcome = timing_commit_trace(prog, config)
            assert outcome.reason == "exit", (setup, outcome.reason)
            div = first_divergence(ref[:len(got)], got)
            assert div is None, (setup, div)
            assert len(ref) - len(got) <= config.commit_width + 1
