"""Unit tests for the two-ISA assembler and linker."""

import pytest

from repro.errors import AsmError
from repro.isa.assembler import CODE_BASE, PAGE, assemble
from repro.sim.functional import run_program


class TestBasics:
    def test_minimal_program(self):
        prog = assemble(".text\n_start: nop\n", "x86")
        assert prog.entry == CODE_BASE
        assert prog.code_size == 1

    def test_missing_entry_label(self):
        with pytest.raises(AsmError, match="_start"):
            assemble(".text\nfoo: nop\n", "x86")

    def test_duplicate_label(self):
        with pytest.raises(AsmError, match="duplicate"):
            assemble(".text\n_start: nop\n_start: nop\n", "x86")

    def test_undefined_label(self):
        with pytest.raises(AsmError, match="undefined"):
            assemble(".text\n_start: jmp nowhere\n", "x86")

    def test_comments_and_blank_lines(self):
        prog = assemble("; comment\n.text\n\n_start: nop ; trailing\n",
                        "x86")
        assert prog.code_size == 1

    def test_unknown_directive(self):
        with pytest.raises(AsmError, match="directive"):
            assemble(".text\n_start: nop\n.quad 4\n", "x86")

    def test_bad_operand(self):
        with pytest.raises(AsmError):
            assemble(".text\n_start: mov r0, @!$\n", "x86")

    def test_unknown_isa(self):
        with pytest.raises(AsmError, match="ISA"):
            assemble(".text\n_start: nop\n", "mips")


class TestDataSection:
    def test_word_byte_space(self):
        prog = assemble(
            ".text\n_start: nop\n.data\n"
            "vals: .word 1, 2, 3\nbts: .byte 9, 8\ngap: .space 10\n",
            "x86")
        data = [s for s in prog.sections if s.writable][0]
        assert data.base % PAGE == 0
        assert data.data[:12] == (b"\x01\x00\x00\x00\x02\x00\x00\x00"
                                  b"\x03\x00\x00\x00")
        assert data.data[12:14] == b"\x09\x08"
        assert len(data.data) == 24

    def test_word_can_hold_label(self):
        prog = assemble(
            ".text\n_start: nop\n.data\nptr: .word target\ntarget: .word 7\n",
            "x86")
        data = [s for s in prog.sections if s.writable][0]
        ptr = int.from_bytes(data.data[:4], "little")
        assert ptr == prog.symbols["target"]

    def test_negative_word(self):
        prog = assemble(".text\n_start: nop\n.data\nv: .word -1\n", "x86")
        data = [s for s in prog.sections if s.writable][0]
        assert data.data[:4] == b"\xff\xff\xff\xff"


class TestRelaxation:
    def test_short_branch_chosen_for_near_target(self):
        prog = assemble(".text\n_start: jmp next\nnext: nop\n", "x86")
        assert prog.code_size == 3  # 2-byte jmp + nop

    def test_long_branch_for_far_target(self):
        filler = "\n".join("  add r0, 1" for _ in range(100))
        prog = assemble(f".text\n_start: jmp end\n{filler}\nend: nop\n",
                        "x86")
        # 100 3-byte adds are out of rel8 range: need the 5-byte form.
        assert prog.code_size == 5 + 300 + 1

    def test_arm_li_small_constant_single_word(self):
        prog = assemble(".text\n_start: li r0, 5\n", "arm")
        assert prog.code_size == 4

    def test_arm_li_large_constant_two_words(self):
        prog = assemble(".text\n_start: li r0, 100000\n", "arm")
        assert prog.code_size == 8

    def test_arm_li_label_expands_when_needed(self):
        # Data label lands past 32767 when code is large enough.
        filler = "\n".join("  nop" for _ in range(9000))
        prog = assemble(
            f".text\n_start: li r0, =buf\n{filler}\n.data\nbuf: .word 1\n",
            "arm")
        assert prog.symbols["buf"] > 32767
        # First instruction must be the mov/movt pair (8 bytes).
        code = [s for s in prog.sections if s.executable][0]
        assert prog.code_size == 8 + 9000 * 4

    def test_relaxation_converges_mixed(self):
        # A chain of branches whose sizes interact.
        src = [".text", "_start:"]
        for i in range(30):
            src.append(f"  jeq l{i}")
        for i in range(30):
            src.append(f"l{i}: add r0, 1")
        src.append("  li r0, 2")
        src.append("  li r1, 0")
        src.append("  syscall")
        prog = assemble("\n".join(src) + "\n", "x86")
        assert prog.code_size > 0


class TestEndToEnd:
    def test_x86_program_runs(self):
        src = """
.text
_start:
  li r0, 1
  li r1, =msg
  li r2, 8
  syscall
  li r0, 2
  li r1, 3
  syscall
.data
msg: .byte 1,2,3,4,5,6,7,8
"""
        res = run_program(assemble(src, "x86"))
        assert res.reason == "exit"
        assert res.exit_code == 3
        assert res.output == bytes([1, 2, 3, 4, 5, 6, 7, 8])

    def test_arm_program_runs(self):
        src = """
.text
_start:
  li r0, 1
  li r1, =msg
  li r2, 4
  svc
  li r0, 2
  li r1, 0
  svc
.data
msg: .word 305419896
"""
        res = run_program(assemble(src, "arm"))
        assert res.reason == "exit"
        assert res.output == (305419896).to_bytes(4, "little")

    def test_sp_alias(self):
        src = """
.text
_start:
  sub sp, 8
  li r0, 42
  store [sp+0], r0
  load r1, [sp+0]
  li r0, 2
  syscall
"""
        res = run_program(assemble(src, "x86"))
        assert res.exit_code == 42
