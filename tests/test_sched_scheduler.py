"""The durable scheduler: losslessness, retries, shards, merge.

These tests run real (tiny) studies — a few units of a few injections
each — through worker processes, so they are the slowest in the suite
but exercise the machinery the paper's month-long studies depend on.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.campaign import run_campaign
from repro.sched import (DONE, QUARANTINED, CampaignPlan, Scheduler,
                         StudySpec, load_journal, merge_studies, run_study,
                         run_unit, study_status)

TWO_SETUPS = ("MaFIN-x86", "GeFIN-x86")


def spec(**over):
    base = dict(setups=TWO_SETUPS, benchmarks=("sha",),
                structures=("int_rf",), fault_types=("transient",),
                injections=4, seed=7)
    base.update(over)
    return StudySpec(**base)


def truncate_logs(path, keep_injections):
    """Simulate a unit killed mid-campaign: keep golden + K records."""
    rows = [json.loads(line) for line in
            path.read_text().strip().splitlines()]
    kept, n = [], 0
    for row in rows:
        if row.get("kind") == "injection":
            if n >= keep_injections:
                continue
            n += 1
        kept.append(row)
    path.write_text("".join(json.dumps(r) + "\n" for r in kept))


class TestUnitLosslessness:
    """Kill-and-resume must lose nothing, on both setups."""

    @pytest.mark.parametrize("setup", TWO_SETUPS)
    def test_mid_unit_resume_matches_uninterrupted(self, tmp_path, setup):
        sp = spec(injections=5)
        unit = CampaignPlan.from_spec(sp).unit(
            f"{setup}/sha/int_rf/transient")
        full_logs = tmp_path / "full.jsonl"
        full = run_unit(unit, sp, full_logs)
        assert full["ok"] and full["injections"] == 5
        assert full["resumed"] == 0 and full["fresh"] == 5

        # Interrupted copy: the crash landed after two injections.
        cut_logs = tmp_path / "cut.jsonl"
        cut_logs.write_text(full_logs.read_text())
        truncate_logs(cut_logs, keep_injections=2)
        resumed = run_unit(unit, sp, cut_logs, attempt=2)
        assert resumed["resumed"] == 2 and resumed["fresh"] == 3
        assert resumed["counts"] == full["counts"]
        assert cut_logs.read_text() == full_logs.read_text()

    def test_unit_rejects_foreign_logs(self, tmp_path):
        sp = spec()
        plan = CampaignPlan.from_spec(sp)
        uid = f"{TWO_SETUPS[0]}/sha/int_rf/transient"
        logs = tmp_path / "logs.jsonl"
        run_unit(plan.unit(uid), sp, logs)
        # Same file, different spec seed -> different mask stream.
        with pytest.raises(ValueError, match="mask stream"):
            run_unit(plan.unit(uid), spec(seed=8), logs)


class TestScheduler:
    def test_study_matches_direct_campaigns(self, tmp_path):
        sp = spec()
        result = run_study(sp, tmp_path / "study", workers=2)
        assert result.ok and len(result.cells) == 2
        for unit in CampaignPlan.from_spec(sp):
            direct = run_campaign(unit.setup, unit.benchmark,
                                  unit.structure, injections=sp.injections,
                                  seed=unit.seed(sp.seed))
            assert result.cells[unit.unit_id].counts == direct.classify()

    def test_cancel_and_resume_lossless(self, tmp_path):
        sp = spec(injections=6)
        baseline = run_study(sp, tmp_path / "baseline", workers=1)
        assert baseline.ok

        # Cancel as soon as the first unit lands; the in-flight lease
        # is terminated mid-campaign.
        study_dir = tmp_path / "study"
        plan = CampaignPlan.from_spec(sp)
        sched = Scheduler(plan, study_dir, workers=2)
        sched.progress = lambda uid, state, done, total: (
            sched.cancel() if state == DONE else None)
        first = sched.run()
        assert first.interrupted and not first.ok
        done_before = [uid for uid, c in first.cells.items()
                       if c.state == DONE]
        assert len(done_before) >= 1

        resumed = Scheduler.resume(study_dir, workers=2).run(resume=True)
        assert resumed.ok and not resumed.interrupted
        assert resumed.totals() == baseline.totals()
        assert resumed.classifications() == baseline.classifications()
        # Completed units were restored from the journal, not re-leased.
        state = load_journal(study_dir / "journal.jsonl")
        for uid in done_before:
            assert state.attempts[uid] == 1

    def test_fresh_run_refuses_existing_journal(self, tmp_path):
        sp = spec(setups=(TWO_SETUPS[0],))
        run_study(sp, tmp_path / "study", workers=1)
        with pytest.raises(FileExistsError):
            run_study(sp, tmp_path / "study", workers=1)

    def test_resume_refuses_other_spec(self, tmp_path):
        sp = spec(setups=(TWO_SETUPS[0],))
        run_study(sp, tmp_path / "study", workers=1)
        plan = CampaignPlan.from_spec(spec(setups=(TWO_SETUPS[0],),
                                           seed=99))
        with pytest.raises(ValueError, match="spec"):
            Scheduler(plan, tmp_path / "study").run(resume=True)

    def test_status_and_events(self, tmp_path):
        sp = spec(setups=(TWO_SETUPS[1],), structures=("int_rf", "l1d"))
        run_study(sp, tmp_path / "study", workers=2)
        status = study_status(tmp_path / "study")
        assert status["units"] == 2
        assert status["tally"][DONE] == 2
        assert status["injections_done"] == 8
        names = [json.loads(line)["name"] for line in
                 (tmp_path / "study" / "events.jsonl").read_text()
                 .strip().splitlines()]
        assert names[0] == "study_start" and names[-1] == "study_end"
        for expected in ("unit_leased", "inject_end", "unit_done"):
            assert expected in names


class TestFailurePolicy:
    def test_retry_then_success(self, tmp_path, monkeypatch):
        sp = spec(setups=(TWO_SETUPS[0],))
        uid = f"{TWO_SETUPS[0]}/sha/int_rf/transient"
        monkeypatch.setenv("REPRO_SCHED_CHAOS", f"{uid}=fail:2")
        plan = CampaignPlan.from_spec(sp)
        sched = Scheduler(plan, tmp_path / "study", workers=1,
                          max_retries=2, backoff_s=0.05)
        result = sched.run()
        assert result.ok
        assert result.cells[uid].attempts == 3
        assert sched.metrics.counter_value("sched.retries") == 2
        assert sched.metrics.counter_value("sched.units_failed") == 2

    def test_poison_unit_quarantined(self, tmp_path, monkeypatch):
        sp = spec(structures=("int_rf",))
        uid = f"{TWO_SETUPS[0]}/sha/int_rf/transient"
        monkeypatch.setenv("REPRO_SCHED_CHAOS", f"{uid}=fail:99")
        sched = Scheduler(CampaignPlan.from_spec(sp), tmp_path / "study",
                          workers=2, max_retries=1, backoff_s=0.05)
        result = sched.run()
        assert not result.ok and not result.interrupted
        assert result.quarantined() == [uid]
        other = f"{TWO_SETUPS[1]}/sha/int_rf/transient"
        assert result.cells[other].state == DONE
        state = load_journal(tmp_path / "study" / "journal.jsonl")
        assert state.state_of(uid) == QUARANTINED
        assert sched.metrics.counter_value("sched.quarantined") == 1

    def test_hung_unit_times_out_and_retries(self, tmp_path, monkeypatch):
        sp = spec(setups=(TWO_SETUPS[1],), injections=3)
        uid = f"{TWO_SETUPS[1]}/sha/int_rf/transient"
        monkeypatch.setenv("REPRO_SCHED_CHAOS", f"{uid}=hang:1")
        sched = Scheduler(CampaignPlan.from_spec(sp), tmp_path / "study",
                          workers=1, unit_timeout_s=2.0, max_retries=2,
                          backoff_s=0.05)
        result = sched.run()
        assert result.ok and result.cells[uid].attempts == 2
        assert sched.metrics.counter_value("sched.timeouts") == 1


class TestSharding:
    def test_two_shards_merge_to_unsharded_result(self, tmp_path):
        # int_rf/l1i chosen because the grid genuinely splits 2/2.
        sp = spec(structures=("int_rf", "l1i"))
        whole = run_study(sp, tmp_path / "whole", workers=2)
        assert whole.ok

        dirs = []
        for i in range(2):
            d = tmp_path / f"shard{i}"
            res = run_study(sp, d, shard=(i, 2), workers=2)
            assert res.ok and len(res.cells) == 2    # a real split
            dirs.append(d)
        merged = merge_studies(dirs)
        assert merged["complete"]
        assert not merged["missing"] and not merged["conflicts"]
        assert merged["units"] == whole.classifications()
        assert merged["totals"] == whole.totals()

    def test_merge_flags_missing_shard(self, tmp_path):
        sp = spec(structures=("int_rf", "l1i"))
        d = tmp_path / "shard0"
        run_study(sp, d, shard=(0, 2), workers=2)
        merged = merge_studies([d])
        assert not merged["complete"]
        assert merged["missing"]

    def test_merge_rejects_spec_mismatch(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        run_study(spec(setups=(TWO_SETUPS[0],)), a, workers=1)
        run_study(spec(setups=(TWO_SETUPS[0],), seed=9), b, workers=1)
        with pytest.raises(ValueError, match="spec mismatch"):
            merge_studies([a, b])


class TestKillResumeCli:
    """SIGTERM a running study process, resume it, lose nothing."""

    def test_sigterm_then_resume_matches_uninterrupted(self, tmp_path):
        env = dict(os.environ, PYTHONPATH="src")
        common = ["--benchmarks", "sha", "--structures", "int_rf",
                  "--injections", "8", "--seed", "7", "--workers", "1"]
        study = tmp_path / "study"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.tools", "sched", "run",
             "--out", str(study), *common],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        # Wait for the first unit to complete, then pull the plug while
        # the second is (or is about to be) in flight.
        journal = study / "journal.jsonl"
        deadline = time.time() + 60
        while time.time() < deadline:
            if journal.exists() and '"done"' in journal.read_text():
                break
            time.sleep(0.05)
        else:
            proc.kill()
            pytest.fail("study never completed its first unit")
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=30)
        state = load_journal(journal)
        if rc == 0:                      # lost the race: study finished
            assert state.tally()[DONE] == 2
        else:
            assert rc == 130
            assert state.tally()[DONE] < 2
            rc2 = subprocess.run(
                [sys.executable, "-m", "repro.tools", "sched", "resume",
                 str(study), "--workers", "1"],
                env=env, stdout=subprocess.DEVNULL).returncode
            assert rc2 == 0

        baseline = run_study(StudySpec.from_dict(
            load_journal(journal).spec_dict),
            tmp_path / "baseline", workers=1)
        final = load_journal(journal)
        assert final.tally()[DONE] == 2
        assert final.counts_by_unit() == {
            uid: cell.counts for uid, cell in baseline.cells.items()}
