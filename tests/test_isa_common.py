"""Unit tests for the shared ISA model (flags, ALU executor, µops)."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.common import (FLAG_C, FLAG_N, FLAG_V, FLAG_Z, REG_FLAGS,
                              ArithFault, Instr, UOp, alu_exec,
                              compute_flags, cond_holds, s32, u32)

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestWrapping:
    def test_u32_wraps(self):
        assert u32(0x1_0000_0001) == 1
        assert u32(-1) == 0xFFFFFFFF

    def test_s32_sign(self):
        assert s32(0xFFFFFFFF) == -1
        assert s32(0x7FFFFFFF) == 0x7FFFFFFF
        assert s32(0x80000000) == -0x80000000

    @given(U32)
    def test_roundtrip(self, x):
        assert u32(s32(x)) == x


class TestFlags:
    def test_equal_sets_zero(self):
        assert compute_flags(5, 5) & FLAG_Z

    def test_less_than_signed(self):
        flags = compute_flags(u32(-3), 4)
        assert cond_holds("lt", flags)
        assert not cond_holds("ge", flags)

    def test_unsigned_borrow(self):
        assert compute_flags(1, 2) & FLAG_C
        assert not compute_flags(2, 1) & FLAG_C

    def test_overflow(self):
        # INT_MIN - 1 overflows.
        assert compute_flags(0x80000000, 1) & FLAG_V

    @given(U32, U32)
    def test_conditions_match_python(self, a, b):
        flags = compute_flags(a, b)
        assert cond_holds("eq", flags) == (a == b)
        assert cond_holds("ne", flags) == (a != b)
        assert cond_holds("lt", flags) == (s32(a) < s32(b))
        assert cond_holds("le", flags) == (s32(a) <= s32(b))
        assert cond_holds("gt", flags) == (s32(a) > s32(b))
        assert cond_holds("ge", flags) == (s32(a) >= s32(b))
        assert cond_holds("ult", flags) == (a < b)
        assert cond_holds("uge", flags) == (a >= b)
        assert cond_holds("ule", flags) == (a <= b)
        assert cond_holds("ugt", flags) == (a > b)

    def test_unknown_condition(self):
        with pytest.raises(ValueError):
            cond_holds("xx", 0)


class TestAluExec:
    @given(U32, U32)
    def test_add_sub_wrap(self, a, b):
        assert alu_exec("add", a, b) == (a + b) & 0xFFFFFFFF
        assert alu_exec("sub", a, b) == (a - b) & 0xFFFFFFFF

    @given(U32, st.integers(min_value=0, max_value=63))
    def test_shifts_mask_count(self, a, n):
        assert alu_exec("shl", a, n) == (a << (n & 31)) & 0xFFFFFFFF
        assert alu_exec("shr", a, n) == a >> (n & 31)

    @given(U32, U32)
    def test_division_truncates_toward_zero(self, a, b):
        sa, sb = s32(a), s32(b)
        if sb == 0:
            with pytest.raises(ArithFault):
                alu_exec("div", a, b)
            return
        q = s32(alu_exec("div", a, b))
        r = s32(alu_exec("mod", a, b))
        # C semantics: q truncated toward zero and a == q*b + r.
        assert u32(q * sb + r) == a & 0xFFFFFFFF
        if sa != -(2 ** 31) or sb != -1:  # avoid the wrap corner
            assert abs(q) == abs(sa) // abs(sb)

    def test_div_by_zero_raises(self):
        with pytest.raises(ArithFault):
            alu_exec("div", 10, 0)
        with pytest.raises(ArithFault):
            alu_exec("mod", 10, 0)

    def test_mov_variants(self):
        assert alu_exec("mov", 7, 99) == 7          # reg source
        assert alu_exec("mov", None, 99) == 99      # immediate
        assert alu_exec("movt", None, 0xABCD, old_dst=0x1234FFFF) == \
            0xABCDFFFF

    def test_not_neg(self):
        assert alu_exec("not", 0, 0) == 0xFFFFFFFF
        assert alu_exec("neg", 1, 0) == 0xFFFFFFFF

    def test_cmp_returns_flags(self):
        assert alu_exec("cmp", 3, 3) & FLAG_Z

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            alu_exec("frobnicate", 1, 2)

    def test_sar_is_arithmetic(self):
        assert alu_exec("sar", u32(-8), 1) == u32(-4)


class TestUOp:
    def test_alu_srcs_and_dst(self):
        uop = UOp("alu", "add", rd=3, rs1=3, rs2=5)
        assert uop.srcs() == [3, 5]
        assert uop.dst() == 3

    def test_cmp_writes_flags(self):
        uop = UOp("alu", "cmp", rs1=1, rs2=2)
        assert uop.dst() == REG_FLAGS

    def test_movt_reads_its_destination(self):
        uop = UOp("alu", "movt", rd=4, imm=0xFFFF)
        assert 4 in uop.srcs()

    def test_store_sources(self):
        uop = UOp("store", rs1=1, rs2=2, imm=8)
        assert uop.srcs() == [1, 2]
        assert uop.dst() is None

    def test_branch_reads_flags(self):
        uop = UOp("br", "eq", imm=0x2000)
        assert uop.srcs() == [REG_FLAGS]

    def test_cached_views_are_stable(self):
        uop = UOp("load", rd=2, rs1=1, imm=4)
        assert uop.srcs_cached() == uop.srcs_cached() == (1,)
        assert uop.dst_cached() == 2

    def test_deepcopy_shares(self):
        import copy
        uop = UOp("nop")
        instr = Instr("nop", 1, [uop])
        assert copy.deepcopy(uop) is uop
        assert copy.deepcopy(instr) is instr
