"""Trust enforcement for remote completions.

A remote worker's word is checked three ways: semantic ingest
validation of every shipped record file (422 on violation),
a determinism challenge before admission, and sampled local
re-execution audits that byte-compare what the worker sent against
what the server's own simulator produces.  These tests drive each
layer directly — the honest artifacts are *real* unit executions, so
the validators are exercised against genuine record bytes, and every
lie is a mutation of a truthful file.
"""

import json

import pytest

from repro.errors import CampaignError
from repro.sched import CampaignPlan, StudySpec
from repro.sched.journal import AUDIT_VOID, DONE, load_journal
from repro.sched.plan import WorkUnit
from repro.sched.worker import run_unit
from repro.svc import (CampaignService, ChallengePending, RejectedComplete,
                       WorkerDistrusted)
from repro.svc.attest import (CHALLENGE_WIRE, Attestor, canonical_masks_text,
                              execute_challenge, validate_complete)
from repro.svc.fleet import UnknownWorker, pack_text
from repro.svc.state import RUNNING, STUDY_DONE

SETUP = "MaFIN-x86"


def spec(**over):
    base = dict(setups=(SETUP,), benchmarks=("sha",),
                structures=("int_rf",), fault_types=("transient",),
                injections=2, seed=7)
    base.update(over)
    return StudySpec(**base)


@pytest.fixture(scope="module")
def honest(tmp_path_factory):
    """One real execution of the standard unit: the truth to lie about."""
    root = tmp_path_factory.mktemp("honest")
    sp = spec()
    unit = list(CampaignPlan.from_spec(sp))[0]
    logs = root / "logs.jsonl"
    masks = root / "masks.jsonl"
    result = run_unit(unit, sp, logs_path=logs, masks_path=masks,
                      fsync=False)
    result = dict(result)
    result.pop("golden_blob", None)
    return {"unit": unit, "spec": sp, "result": result,
            "logs": logs.read_text(), "masks": masks.read_text()}


def tamper_logs(logs_text, mutate):
    """Apply *mutate(data_dict)* to the first injection row."""
    out = []
    done = False
    for line in logs_text.splitlines():
        row = json.loads(line)
        if not done and row.get("kind") == "injection":
            mutate(row["data"])
            done = True
        out.append(json.dumps(row))
    assert done, "no injection row to tamper with"
    return "".join(o + "\n" for o in out)


def smart_lie(honest):
    """A lie ingest validation cannot catch: flip a record's output so
    its class changes, then recompute the claimed counts consistently.
    Masks, set_ids, reasons and golden all stay genuine — only a
    re-execution can tell."""
    from repro.core.outcome import GoldenReference, InjectionRecord
    from repro.core.parser import classify_all

    logs_text = tamper_logs(
        honest["logs"],
        lambda d: d.update(output_hex="deadbeef" + d.get("output_hex", "")))
    golden, records = None, []
    for line in logs_text.splitlines():
        row = json.loads(line)
        if row["kind"] == "golden":
            golden = GoldenReference.from_dict(row["data"])
        else:
            records.append(InjectionRecord.from_dict(row["data"]))
    result = dict(honest["result"])
    result["counts"] = classify_all(records, golden)
    return result, logs_text


class TestValidateComplete:
    def test_honest_complete_passes(self, honest):
        info = validate_complete(honest["unit"], honest["spec"],
                                 honest["result"], honest["logs"],
                                 honest["masks"])
        assert info["counts"] == honest["result"]["counts"]
        assert info["golden"]["cycles"] > 0

    def test_canonical_masks_match_shipped_file(self, honest):
        golden_cycles = json.loads(
            honest["logs"].splitlines()[0])["data"]["cycles"]
        assert canonical_masks_text(honest["unit"], honest["spec"],
                                    golden_cycles) == honest["masks"]

    def reject(self, honest, code, *, result=None, logs=None, masks=None,
               expect_golden=None):
        with pytest.raises(RejectedComplete) as err:
            validate_complete(honest["unit"], honest["spec"],
                              result or honest["result"],
                              honest["logs"] if logs is None else logs,
                              honest["masks"] if masks is None else masks,
                              expect_golden=expect_golden)
        assert err.value.code == code
        return err.value

    def test_malformed_logs(self, honest):
        self.reject(honest, "malformed-logs",
                    logs='{"kind": "golden"\n')
        self.reject(honest, "malformed-logs",
                    logs='{"kind": "surprise", "data": {}}\n')

    def test_missing_golden(self, honest):
        logs = "".join(line + "\n"
                       for line in honest["logs"].splitlines()
                       if json.loads(line)["kind"] != "golden")
        self.reject(honest, "missing-golden", logs=logs)

    def test_golden_mismatch_against_reference(self, honest):
        golden = json.loads(honest["logs"].splitlines()[0])["data"]
        wrong = dict(golden, cycles=golden["cycles"] + 1)
        exc = self.reject(honest, "golden-mismatch", expect_golden=wrong)
        assert "diverge" in exc.detail

    def test_record_count_dropped_record(self, honest):
        lines = honest["logs"].splitlines()
        logs = "".join(line + "\n" for line in lines[:-1])
        self.reject(honest, "record-count", logs=logs)

    def test_record_count_duplicate_set_id(self, honest):
        lines = honest["logs"].splitlines()
        # Duplicate the first injection row in place of the last: the
        # total still matches the claim, but set_ids are not 0..n-1.
        inj = next(line for line in lines
                   if json.loads(line)["kind"] == "injection")
        logs = "".join(line + "\n" for line in lines[:-1]) + inj + "\n"
        self.reject(honest, "record-count", logs=logs)

    def test_illegal_reason(self, honest):
        logs = tamper_logs(honest["logs"],
                           lambda d: d.update(reason="cosmic-ray"))
        self.reject(honest, "bad-classification", logs=logs)

    def test_counts_not_matching_records(self, honest):
        result = dict(honest["result"], counts={"SDC": 2})
        self.reject(honest, "bad-classification", result=result)

    def test_mask_stream_digest(self, honest):
        masks = honest["masks"].replace('"bit"', '"bat"', 1)
        self.reject(honest, "mask-stream", masks=masks)

    def test_record_masks_not_from_stream(self, honest):
        # The masks *file* is genuine, but a record claims different
        # masks than its own fault set.
        logs = tamper_logs(honest["logs"],
                           lambda d: d["masks"][0].update(bit=(
                               d["masks"][0]["bit"] + 1)))
        self.reject(honest, "mask-stream", logs=logs)


class TestAttestor:
    def test_reject_limit_trips_distrust(self):
        att = Attestor(reject_limit=2)
        unit = list(CampaignPlan.from_spec(spec()))[0]
        for n in (1, 2):
            with pytest.raises(RejectedComplete) as err:
                att.check_complete("w1", unit, spec(), {"ok": True},
                                   "not json\n", "")
            assert err.value.worker == "w1"
            assert err.value.distrusted is (n == 2)
        card = att.scorecard("w1")
        assert card.rejects == 2 and card.distrusted
        assert att.metrics.counter_value("svc.attest.rejected") == 2
        assert att.metrics.counter_value("svc.attest.distrusted") == 1
        with pytest.raises(WorkerDistrusted):
            att.register_gate("w1")
        with pytest.raises(WorkerDistrusted):
            att.admit_gate("w1")

    def test_challenge_gates_admission(self):
        att = Attestor(challenge=True)
        assert att.register_gate("w1") == CHALLENGE_WIRE
        with pytest.raises(ChallengePending):
            att.admit_gate("w1")
        att.scorecard("w1").challenged_ok = True
        att.admit_gate("w1")                 # no raise
        # Re-registration demands a fresh proof.
        att.register_gate("w1")
        with pytest.raises(ChallengePending):
            att.admit_gate("w1")

    def test_audit_sampling_is_seeded(self, honest, tmp_path):
        logs = tmp_path / "l.jsonl"
        masks = tmp_path / "m.jsonl"
        logs.write_text(honest["logs"])
        masks.write_text(honest["masks"])

        def sampled(fraction):
            att = Attestor(audit_fraction=fraction, audit_seed=42)
            return [att.note_complete(f"s{i}", honest["unit"],
                                      honest["spec"], "w1", 1, logs, masks)
                    is not None for i in range(20)]

        assert sampled(1.0) == [True] * 20
        assert sampled(0.0) == [False] * 20
        half = sampled(0.5)
        assert sampled(0.5) == half          # same seed, same picks
        assert 0 < sum(half) < 20

    def test_judge_audit_divergence_distrusts(self, honest, tmp_path):
        att = Attestor(audit_fraction=1.0)
        logs = tmp_path / "l.jsonl"
        masks = tmp_path / "m.jsonl"
        logs.write_text(honest["logs"])
        masks.write_text(honest["masks"])
        ticket = att.note_complete("s1", honest["unit"], honest["spec"],
                                   "w1", 1, logs, masks)
        assert att.judge_audit(ticket, logs, masks)      # identical bytes
        logs.write_text(honest["logs"] + "\n")
        assert not att.judge_audit(ticket, logs, masks)  # one byte off
        assert att.scorecard("w1").distrusted
        assert att.metrics.counter_value("svc.attest.audits_ok") == 1
        assert att.metrics.counter_value("svc.attest.audits_diverged") == 1


def remote_service(root, **over):
    kw = dict(workers=0, fsync=False, backoff_s=0.0)
    kw.update(over)
    return CampaignService(root, **kw)


def complete_body(wire, result, logs_text, masks_text, worker="w1"):
    return {"fence": wire["fence"], "worker": worker, "result": result,
            "logs": pack_text(logs_text), "masks": pack_text(masks_text)}


class TestServiceIngest:
    def test_lying_complete_rejected_then_unit_rerun(self, honest,
                                                     tmp_path):
        logs = tamper_logs(honest["logs"],
                           lambda d: d.update(reason="cosmic-ray"))
        with remote_service(tmp_path) as svc:
            sid = svc.submit(spec(), tenant="alice")
            svc.register_worker("w1")
            wire = svc.lease_remote("w1")
            with pytest.raises(RejectedComplete) as err:
                svc.complete_remote(complete_body(
                    wire, honest["result"], logs, honest["masks"]))
            assert err.value.code == "bad-classification"
            # The lying records never touched the study directory.
            study_dir = tmp_path / "studies" / sid
            uid = wire_uid(wire)
            assert not (study_dir / "logs"
                        / f"{uid.replace('/', '__')}.jsonl").exists()
            assert svc.metrics.counter_value("svc.attest.rejected") == 1
            assert svc.attestor.scorecard("w1").rejects == 1
            # The unit went back through the normal retry path: the
            # same worker (still trusted) completes it honestly.
            svc.tick()
            wire2 = svc.lease_remote("w1")
            assert wire2 is not None and wire2["attempt"] == 2
            svc.complete_remote(complete_body(
                wire2, honest["result"], honest["logs"], honest["masks"]))
            svc.run_until_idle(timeout_s=60)
            assert svc.study_status(sid)["state"] == STUDY_DONE
            # ... and what landed is byte-for-byte the honest text.
            landed = (study_dir / "logs"
                      / f"{uid.replace('/', '__')}.jsonl").read_text()
            assert landed == honest["logs"]

    def test_reject_limit_distrusts_and_expels(self, honest, tmp_path):
        with remote_service(tmp_path, reject_limit=1) as svc:
            svc.submit(spec(), tenant="alice")
            svc.register_worker("w1")
            wire = svc.lease_remote("w1")
            with pytest.raises(RejectedComplete) as err:
                svc.complete_remote(complete_body(
                    wire, honest["result"], "garbage\n", honest["masks"]))
            assert err.value.distrusted
            # Expelled: the worker cannot even ask for work any more.
            with pytest.raises(UnknownWorker):
                svc.lease_remote("w1")
            with pytest.raises(WorkerDistrusted):
                svc.register_worker("w1")
            snap = svc.status()["attest"]
            assert snap["workers"]["w1"]["state"] == "distrusted"

    def test_golden_tofu_rejects_later_divergence(self, honest, tmp_path):
        # First accepted complete pins the family golden; a second
        # worker shipping a *different* golden is rejected even though
        # its file is self-consistent.
        lines = honest["logs"].splitlines()
        golden_row = json.loads(lines[0])
        golden_row["data"]["cycles"] += 1
        lied = "".join([json.dumps(golden_row) + "\n"]
                       + [line + "\n" for line in lines[1:]])
        with remote_service(tmp_path) as svc:
            svc.submit(spec(), tenant="alice")
            svc.submit(spec(seed=7), tenant="bob")  # same unit family
            svc.register_worker("w1")
            svc.register_worker("w2")
            wire1 = svc.lease_remote("w1")
            svc.complete_remote(complete_body(
                wire1, honest["result"], honest["logs"], honest["masks"]))
            wire2 = svc.lease_remote("w2")
            with pytest.raises(RejectedComplete) as err:
                svc.complete_remote(complete_body(
                    wire2, honest["result"], lied, honest["masks"],
                    worker="w2"))
            assert err.value.code == "golden-mismatch"


def wire_uid(wire):
    return WorkUnit.from_dict(wire["unit"]).unit_id


class TestServiceChallenge:
    def test_challenge_wire_and_admission(self, tmp_path):
        with remote_service(tmp_path, challenge=True) as svc:
            out = svc.register_worker("w1")
            assert out["challenge"] == CHALLENGE_WIRE
            svc.submit(spec(), tenant="alice")
            with pytest.raises(ChallengePending):
                svc.lease_remote("w1")
            proof = execute_challenge(CHALLENGE_WIRE,
                                      tmp_path / "agent-scratch")
            out = svc.worker_challenge("w1", {
                "logs": pack_text(proof["logs"]),
                "masks": pack_text(proof["masks"]),
                "state_digest": proof["state_digest"]})
            assert out["admitted"]
            assert svc.lease_remote("w1") is not None

    def test_failed_challenge_distrusts(self, tmp_path):
        with remote_service(tmp_path, challenge=True) as svc:
            svc.register_worker("w1")
            with pytest.raises(WorkerDistrusted):
                svc.worker_challenge("w1", {
                    "logs": pack_text("wrong\n"),
                    "masks": pack_text("wrong\n"),
                    "state_digest": "0" * 40})
            assert svc.attestor.scorecard("w1").distrusted
            with pytest.raises(WorkerDistrusted):
                svc.register_worker("w1")


class TestServiceAudit:
    def test_honest_complete_passes_audit(self, honest, tmp_path):
        with remote_service(tmp_path, audit_fraction=1.0) as svc:
            sid = svc.submit(spec(), tenant="alice")
            svc.register_worker("w1")
            wire = svc.lease_remote("w1")
            svc.complete_remote(complete_body(
                wire, honest["result"], honest["logs"], honest["masks"]))
            svc.tick()
            # Finish is deferred behind the pending audit.
            assert svc.study_status(sid)["state"] != STUDY_DONE
            svc.run_until_idle(timeout_s=120)
            assert svc.study_status(sid)["state"] == STUDY_DONE
            assert svc.metrics.counter_value("svc.attest.audits_ok") == 1
            uid = wire_uid(wire)
            assert uid in svc.runs[sid].audited_ok

    def test_smart_lie_caught_by_audit_and_voided(self, honest, tmp_path):
        result, logs = smart_lie(honest)
        with remote_service(tmp_path, audit_fraction=1.0) as svc:
            sid = svc.submit(spec(), tenant="alice")
            svc.register_worker("w1")
            wire = svc.lease_remote("w1")
            # Ingest validation cannot tell: the lie is self-consistent.
            svc.complete_remote(complete_body(
                wire, result, logs, honest["masks"]))
            assert svc.metrics.counter_value("svc.attest.rejected") == 0
            uid = wire_uid(wire)
            # Drive until the audit's local re-execution lands.
            t0 = __import__("time").monotonic()
            while svc.metrics.counter_value(
                    "svc.attest.audits_diverged") == 0:
                svc.tick()
                assert __import__("time").monotonic() - t0 < 120
                __import__("time").sleep(0.01)
            card = svc.attestor.scorecard("w1")
            assert card.distrusted and card.divergences == 1
            assert svc.metrics.counter_value("svc.attest.voided") == 1
            run = svc.runs[sid]
            study_dir = tmp_path / "studies" / sid
            journal = load_journal(study_dir / "journal.jsonl")
            assert journal.state_of(uid) == AUDIT_VOID
            assert journal.tally()["pending"] == 1
            # The lying files are gone — a local re-run must not
            # resume from them.
            assert not run.logs_path(
                list(run.plan)[0]).exists()
            # A fresh worker picks the voided unit up and the study
            # settles with the honest bytes.
            svc.register_worker("w2")
            wire2 = svc.lease_remote("w2")
            assert wire_uid(wire2) == uid
            svc.complete_remote(complete_body(
                wire2, honest["result"], honest["logs"], honest["masks"],
                worker="w2"))
            svc.run_until_idle(timeout_s=120)
            assert svc.study_status(sid)["state"] == STUDY_DONE
            landed = (study_dir / "logs"
                      / f"{uid.replace('/', '__')}.jsonl").read_text()
            assert landed == honest["logs"]
            # Exactly one DONE row survives the void (at-most-once).
            dones = [row for row in map(
                json.loads,
                (study_dir / "journal.jsonl").read_text().splitlines())
                if row.get("state") == DONE]
            assert len(dones) == 2           # voided one + honest one
            assert dones[-1].get("worker") == "w2"

    def test_distrust_reopens_done_study(self, honest, tmp_path):
        # No audit sampled this unit, so the study went DONE on the
        # worker's word; a later distrust verdict (an audit divergence
        # elsewhere, or an operator) must reopen it and void the work.
        with remote_service(tmp_path) as svc:
            sid = svc.submit(spec(), tenant="alice")
            svc.register_worker("w1")
            wire = svc.lease_remote("w1")
            svc.complete_remote(complete_body(
                wire, honest["result"], honest["logs"], honest["masks"]))
            svc.run_until_idle(timeout_s=60)
            assert svc.study_status(sid)["state"] == STUDY_DONE
            svc._distrust_effects("w1", "operator verdict")
            journal = load_journal(
                tmp_path / "studies" / sid / "journal.jsonl")
            assert journal.state_of(wire_uid(wire)) == AUDIT_VOID
            assert svc.study_status(sid)["state"] == RUNNING
            assert not svc.idle              # the unit is queued again
            # The reopened study settles again once an honest worker
            # re-runs the voided unit.
            svc.register_worker("w2")
            wire2 = svc.lease_remote("w2")
            svc.complete_remote(complete_body(
                wire2, honest["result"], honest["logs"], honest["masks"],
                worker="w2"))
            svc.run_until_idle(timeout_s=60)
            assert svc.study_status(sid)["state"] == STUDY_DONE


class TestJournalAppendFailure:
    def test_journal_enospc_raises_campaign_error(self, tmp_path):
        from repro.sched.journal import Journal

        journal = Journal(tmp_path / "journal.jsonl", fsync=False)

        class FullDisk:
            closed = False

            def write(self, text):
                raise OSError(28, "No space left on device")

        journal._fh = FullDisk()
        with pytest.raises(CampaignError) as err:
            journal.record("u1", DONE)
        assert "journal.jsonl" in str(err.value)
        assert "fsck --repair" in str(err.value)

    def test_service_journal_enospc_raises_campaign_error(self, tmp_path):
        from repro.svc.state import ServiceJournal

        journal = ServiceJournal(tmp_path / "service.jsonl", fsync=False)

        class FullDisk:
            closed = False

            def write(self, text):
                raise OSError(28, "No space left on device")

        journal._fh = FullDisk()
        with pytest.raises(CampaignError) as err:
            journal.record_state("study-x", RUNNING)
        assert "service.jsonl" in str(err.value)
