"""Unit tests for statistical sampling and the fault-mask generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fault import (INTERMITTENT, PERMANENT, TRANSIENT, FaultMask,
                              FaultSet)
from repro.core.maskgen import FaultMaskGenerator, StructureInfo
from repro.core.sampling import (achieved_error_margin, fault_space,
                                 required_injections, z_score)


class TestSamplingPaperNumbers:
    def test_99_3_gives_1843(self):
        assert required_injections(None, 0.99, 0.03) == 1843

    def test_99_5_gives_663(self):
        assert required_injections(None, 0.99, 0.05) == 663

    def test_2000_runs_are_288_margin(self):
        assert achieved_error_margin(2000, None, 0.99) == \
            pytest.approx(0.0288, abs=0.0001)

    def test_speed_accuracy_tradeoff_factor_3(self):
        # §IV.A: 5 % instead of 3 % → roughly 3x fewer runs.
        n3 = required_injections(None, 0.99, 0.03)
        n5 = required_injections(None, 0.99, 0.05)
        assert 2.5 < n3 / n5 < 3.0


class TestSamplingProperties:
    @given(st.floats(min_value=0.01, max_value=0.2),
           st.floats(min_value=0.011, max_value=0.21))
    def test_monotone_in_error_margin(self, e1, e2):
        lo, hi = sorted((e1, e2))
        if hi - lo < 1e-6:
            return
        assert required_injections(None, 0.99, lo) >= \
            required_injections(None, 0.99, hi)

    @given(st.integers(min_value=10, max_value=10 ** 9))
    def test_finite_population_never_exceeds_population(self, pop):
        assert required_injections(pop, 0.99, 0.03) <= pop

    @given(st.integers(min_value=10 ** 7, max_value=10 ** 12))
    def test_large_population_approaches_infinite_limit(self, pop):
        n = required_injections(pop, 0.99, 0.03)
        assert abs(n - 1843) <= 2

    def test_z_scores(self):
        assert z_score(0.99) == pytest.approx(2.5758, abs=1e-3)
        assert z_score(0.95) == pytest.approx(1.96, abs=1e-3)
        # Non-table value via the analytic path.
        assert z_score(0.975) == pytest.approx(2.2414, abs=5e-3)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            required_injections(None, 0.99, 0)
        with pytest.raises(ValueError):
            required_injections(-5, 0.99, 0.03)
        with pytest.raises(ValueError):
            z_score(0.3)
        with pytest.raises(ValueError):
            achieved_error_margin(0)

    def test_fault_space(self):
        assert fault_space(1024, 10_000) == 10_240_000


class TestFaultMask:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultMask("l1d", 0, 0, 10, fault_type="cosmic")
        with pytest.raises(ValueError):
            FaultMask("l1d", 0, 0, 10, fault_type=INTERMITTENT, duration=0)

    def test_roundtrip_dict(self):
        m = FaultMask("l1d", 3, 17, 1200, INTERMITTENT, duration=50,
                      stuck_value=1)
        assert FaultMask.from_dict(m.to_dict()) == m

    def test_fault_set_properties(self):
        a = FaultMask("l1d", 0, 0, 100)
        b = FaultMask("int_rf", 1, 2, 50)
        fs = FaultSet(masks=(a, b), set_id=3)
        assert fs.first_cycle == 50
        assert fs.structures == ("int_rf", "l1d")
        assert not fs.single
        assert FaultSet.from_dict(fs.to_dict()) == fs

    def test_empty_fault_set_rejected(self):
        with pytest.raises(ValueError):
            FaultSet(masks=())


class TestMaskGenerator:
    INFO = StructureInfo("l1d", entries=32, bits_per_entry=512)

    def test_deterministic_by_seed(self):
        a = FaultMaskGenerator(5).generate(self.INFO, 1000, count=20)
        b = FaultMaskGenerator(5).generate(self.INFO, 1000, count=20)
        assert a == b

    def test_seeds_differ(self):
        a = FaultMaskGenerator(1).generate(self.INFO, 1000, count=20)
        b = FaultMaskGenerator(2).generate(self.INFO, 1000, count=20)
        assert a != b

    def test_bounds(self):
        sets = FaultMaskGenerator(9).generate(self.INFO, 500, count=200)
        for fs in sets:
            (m,) = fs.masks
            assert 0 <= m.entry < 32
            assert 0 <= m.bit < 512
            assert 1 <= m.cycle <= 500
            assert m.fault_type == TRANSIENT

    def test_count_from_sampling_formula(self):
        sets = FaultMaskGenerator(1).generate(self.INFO, 10, confidence=0.99,
                                              error_margin=0.05)
        # Small population (32*512*10) still near the infinite limit.
        assert 600 <= len(sets) <= 663

    def test_intermittent_masks(self):
        sets = FaultMaskGenerator(3).generate(
            self.INFO, 1000, count=50, fault_type=INTERMITTENT,
            duration_range=(5, 9))
        for fs in sets:
            (m,) = fs.masks
            assert 5 <= m.duration <= 9
            assert m.stuck_value in (0, 1)

    def test_permanent_masks_start_at_zero(self):
        sets = FaultMaskGenerator(3).generate(self.INFO, 1000, count=20,
                                              fault_type=PERMANENT)
        assert all(fs.masks[0].cycle == 0 for fs in sets)

    def test_multi_same_entry(self):
        sets = FaultMaskGenerator(4).generate_multi(
            [self.INFO], 1000, count=10, faults_per_run=3, same_entry=True)
        for fs in sets:
            assert len(fs.masks) == 3
            assert len({m.entry for m in fs.masks}) == 1
            assert len({m.bit for m in fs.masks}) == 3

    def test_multi_cross_structure(self):
        other = StructureInfo("int_rf", 256, 32)
        sets = FaultMaskGenerator(4).generate_multi(
            [self.INFO, other], 2000, count=40, faults_per_run=2)
        structures = {m.structure for fs in sets for m in fs.masks}
        assert structures == {"l1d", "int_rf"}

    def test_multi_requires_two(self):
        with pytest.raises(ValueError):
            FaultMaskGenerator(1).generate_multi([self.INFO], 100, 5,
                                                 faults_per_run=1)

    def test_set_ids_sequential(self):
        sets = FaultMaskGenerator(1).generate(self.INFO, 100, count=5,
                                              start_set=10)
        assert [fs.set_id for fs in sets] == [10, 11, 12, 13, 14]

    def test_bad_fault_type(self):
        with pytest.raises(ValueError):
            FaultMaskGenerator(1).generate(self.INFO, 100, count=5,
                                           fault_type="gamma-ray")

    def test_structure_info_of_site(self):
        from repro.uarch.array import FaultSite, WordArray
        site = FaultSite("x", WordArray("x", 8, 16))
        info = StructureInfo.of_site(site)
        assert (info.name, info.entries, info.bits_per_entry) == ("x", 8, 16)
        assert info.total_bits == 128
