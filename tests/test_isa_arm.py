"""Unit tests for the ARM-like ISA: fixed-width encodings and cracking."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.isa import arm


def decode(raw: bytes, pc: int = 0x1000):
    return arm.decode_window(raw, pc)


class TestEncodeDecodeRoundtrip:
    def test_alu_rr_three_address(self):
        instr = decode(arm.encode_alu_rr("add", 1, 2, 3))
        uop = instr.uops[0]
        assert (uop.rd, uop.rs1, uop.rs2) == (1, 2, 3)
        assert instr.length == 4

    def test_alu_ri_signed_imm16(self):
        instr = decode(arm.encode_alu_ri("sub", 1, 2, -30000))
        assert instr.uops[0].imm == -30000

    def test_alu_ri_range_check(self):
        with pytest.raises(ValueError):
            arm.encode_alu_ri("add", 1, 2, 40000)

    def test_mov_movt_pair_builds_32bit(self):
        lo = decode(arm.encode_mov_ri(0, 0x1234))
        hi = decode(arm.encode_movt(0, 0xABCD))
        assert lo.uops[0].op == "mov"
        assert hi.uops[0].op == "movt"
        assert hi.uops[0].imm == 0xABCD

    def test_ldr_str_displacements(self):
        for disp in (0, 4, -8, 8000, -8000):
            ldr = decode(arm.encode_mem("ldr", 1, 2, disp))
            assert ldr.uops[0].imm == disp
            strw = decode(arm.encode_mem("str", 1, 2, disp))
            assert strw.uops[0].imm == disp
            assert strw.uops[0].rs2 == 1   # rd is the stored register

    def test_mem_disp_range(self):
        with pytest.raises(ValueError):
            arm.encode_mem("ldr", 1, 2, 9000)

    def test_byte_ops(self):
        assert decode(arm.encode_mem("ldrb", 1, 2, 0)).uops[0].size == 1
        assert decode(arm.encode_mem("strb", 1, 2, 0)).uops[0].size == 1

    def test_branch_conditions(self):
        pc = 0x2000
        for cond in ("eq", "ne", "lt", "ge", "ult", "ugt"):
            raw = arm.encode_branch("b" + cond, 0x40)
            instr = decode(raw, pc)
            assert instr.is_cond
            assert instr.target == pc + 4 + 0x40
            assert instr.uops[0].op == cond

    def test_unconditional_and_backward(self):
        instr = decode(arm.encode_branch("b", -8), 0x2000)
        assert instr.target == 0x2000 - 4
        assert not instr.is_cond

    def test_branch_alignment_required(self):
        with pytest.raises(ValueError):
            arm.encode_branch("b", 6)

    def test_bl_links_lr(self):
        instr = decode(arm.encode_branch("bl", 0x100), 0x2000)
        assert instr.is_call
        mov, jmp = instr.uops
        assert mov.rd == arm.LR and mov.imm == 0x2004
        assert jmp.imm == 0x2104

    def test_bx_lr_is_return(self):
        instr = decode(arm.encode_simple("bx", arm.LR))
        assert instr.is_ret and instr.is_indirect

    def test_bx_other_reg_not_return(self):
        instr = decode(arm.encode_simple("bx", 3))
        assert instr.is_indirect and not instr.is_ret

    def test_svc_nop(self):
        assert decode(arm.encode_simple("svc")).uops[0].kind == "sys"
        assert decode(arm.encode_simple("nop")).uops[0].kind == "nop"

    def test_cmp(self):
        instr = decode(arm.encode_cmp_rr(1, 2))
        assert instr.uops[0].op == "cmp"
        instr = decode(arm.encode_cmp_ri(1, -5))
        assert instr.uops[0].imm == -5


class TestDecodeRobustness:
    def test_all_zero_word_undefined(self):
        assert decode(b"\x00\x00\x00\x00").mnemonic == "<ud>"

    def test_high_opcodes_undefined(self):
        word = struct.pack("<I", 0x3F << 26)
        assert decode(word).mnemonic == "<ud>"

    def test_mbz_bits_quirky(self):
        # add rr with garbage in bits [17:4].
        word = struct.pack("<I", (0x01 << 26) | (1 << 22) | (2 << 18) |
                           (0xFF << 4) | 3)
        instr = decode(word)
        assert instr.mnemonic.endswith("!")
        assert instr.uops[0].rs2 == 3

    def test_bad_branch_condition_undefined(self):
        word = struct.pack("<I", (0x20 << 26) | (0xF << 22))
        assert decode(word).mnemonic == "<ud>"

    @given(st.binary(min_size=4, max_size=4))
    def test_decode_never_raises(self, raw):
        instr = arm.decode_window(raw, 0x1000)
        assert instr.length == 4

    @given(st.integers(min_value=0, max_value=9),
           st.integers(min_value=0, max_value=15),
           st.integers(min_value=0, max_value=15),
           st.integers(min_value=0, max_value=15))
    def test_alu_rr_roundtrip_random(self, op_idx, rd, rn, rm):
        ops = ["add", "sub", "and", "or", "xor", "shl", "shr", "sar",
               "mul", "div"]
        op = ops[op_idx]
        instr = decode(arm.encode_alu_rr(op, rd, rn, rm))
        uop = instr.uops[0]
        assert uop.op == op
        assert (uop.rd, uop.rs1, uop.rs2) == (rd, rn, rm)
