"""The documented public API surface must exist and stay importable."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("module", [
        "repro.isa.common", "repro.isa.x86", "repro.isa.arm",
        "repro.isa.assembler", "repro.isa.disasm",
        "repro.lang.lexer", "repro.lang.parser", "repro.lang.sema",
        "repro.lang.interp", "repro.lang.codegen", "repro.lang.compiler",
        "repro.uarch.array", "repro.uarch.cache", "repro.uarch.issueq",
        "repro.uarch.btb", "repro.uarch.ras", "repro.uarch.predictor",
        "repro.uarch.tlb", "repro.uarch.prefetcher",
        "repro.sim.memory", "repro.sim.kernel", "repro.sim.functional",
        "repro.sim.base", "repro.sim.marss", "repro.sim.gem5",
        "repro.sim.config", "repro.sim.stats", "repro.sim.trace",
        "repro.core.fault", "repro.core.maskgen", "repro.core.sampling",
        "repro.core.campaign", "repro.core.dispatcher",
        "repro.core.parser", "repro.core.outcome",
        "repro.core.repository", "repro.core.report",
        "repro.core.checkpoint", "repro.core.ace", "repro.core.parallel",
        "repro.bench.suite", "repro.bench.inputs",
        "repro.injectors.mafin", "repro.injectors.gefin",
        "repro.obs", "repro.obs.trace", "repro.obs.metrics",
        "repro.obs.profile", "repro.obs.summarize",
        "repro.sched", "repro.sched.plan", "repro.sched.journal",
        "repro.sched.worker", "repro.sched.scheduler",
        "repro.svc", "repro.svc.api", "repro.svc.queue",
        "repro.svc.fleet", "repro.svc.service", "repro.svc.state",
        "repro.core.ioutil",
        "repro.tools",
    ])
    def test_module_imports_and_documents(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20, module

    def test_quickstart_docstring_is_honest(self):
        # The package docstring advertises MaFIN().campaign(...).
        assert "MaFIN" in repro.__doc__
        assert hasattr(repro.MaFIN(), "campaign")

    def test_setup_labels_consistent(self):
        assert repro.SETUPS == repro.CONFIG_SETUPS
