"""Workload scaling and the JPEG integer-math mirror."""

import math

import pytest

from repro.bench import suite
from repro.bench.programs._jpeg_common import (QTABLE, ZIGZAG, dct_matrix,
                                               forward_block, tdiv)
from repro.lang.interp import interpret
from repro.sim.functional import run_program


class TestScaleParameter:
    @pytest.mark.parametrize("name", ["qsort", "sha"])
    def test_scale_2_still_correct(self, name):
        src = suite.minic_source(name, scale=2)
        code, out = interpret(src)
        res = run_program(suite.program(name, "x86", scale=2))
        assert res.reason == "exit"
        assert res.output == out and res.exit_code == code

    def test_scale_changes_workload(self):
        small = suite.minic_source("qsort", scale=1)
        big = suite.minic_source("qsort", scale=2)
        assert small != big
        r1 = run_program(suite.program("qsort", "x86", 1))
        r2 = run_program(suite.program("qsort", "x86", 2))
        assert r2.stats["instrs"] > 1.5 * r1.stats["instrs"]


class TestJpegCommon:
    def test_tdiv_truncates_toward_zero(self):
        assert tdiv(7, 2) == 3
        assert tdiv(-7, 2) == -3
        assert tdiv(7, -2) == -3
        assert tdiv(-7, -2) == 3

    def test_dct_matrix_shape_and_scale(self):
        t = dct_matrix()
        assert len(t) == 64
        # Row 0 is the scaled DC basis: 64*sqrt(1/8) ≈ 22.6 everywhere.
        assert all(v == t[0] for v in t[:8])
        assert t[0] == round(64 * math.sqrt(1 / 8))

    def test_dct_rows_roughly_orthogonal(self):
        t = dct_matrix()
        for u in range(8):
            for v in range(u + 1, 8):
                dot = sum(t[u * 8 + k] * t[v * 8 + k] for k in range(8))
                assert abs(dot) < 600  # ~0 up to rounding (scale 64^2*8)

    def test_forward_block_dc_of_flat_block(self):
        flat = [128] * 64  # level-shifts to all zeros
        coeffs = forward_block(flat, dct_matrix())
        assert coeffs == [0] * 64

    def test_forward_block_detects_dc_offset(self):
        bright = [200] * 64
        coeffs = forward_block(bright, dct_matrix())
        assert coeffs[0] != 0              # DC term
        assert all(c == 0 for c in coeffs[1:])

    def test_zigzag_is_permutation(self):
        assert sorted(ZIGZAG) == list(range(64))
        assert ZIGZAG[:4] == [0, 1, 8, 16]

    def test_qtable_matches_jpeg_annex_k_corners(self):
        assert QTABLE[0] == 16 and QTABLE[7] == 61
        assert QTABLE[63] == 99
        assert len(QTABLE) == 64

    def test_mirror_matches_minic_pipeline(self):
        """forward_block (host) must equal the cjpeg kernel's math: the
        djpeg kernel reconstructs from host-produced coefficients, so a
        mismatch would corrupt djpeg outputs."""
        from repro.bench.inputs import image
        from repro.bench.programs import cjpeg
        img = image(8, 8, seed=0x3BE6)
        host = forward_block(img, dct_matrix())
        # Extract the kernel's coefficient stream from the RLE output.
        _code, out = interpret(cjpeg.source())
        words = [int.from_bytes(out[i:i + 4], "little")
                 for i in range(0, len(out), 4)]
        # Rebuild coefficients from (run << 16 | value) tokens.
        rebuilt = [0] * 64
        pos = 0
        for w in words[:-2]:  # drop end-of-block marker and total
            run, val = w >> 16, w & 0xFFFF
            if val & 0x8000:
                val -= 0x10000
            pos += run
            rebuilt[ZIGZAG[pos]] = val
            pos += 1
        clipped = [((c + 0x8000) % 0x10000) - 0x8000 for c in host]
        assert rebuilt == clipped
