"""The self-contained HTML report: determinism, content, CLI."""

import json

import pytest

from repro import tools
from repro.core.ioutil import atomic_write_text
from repro.obs.report import CLASS_COLORS, render_html, report_study
from repro.sched import StudySpec, run_study

SPEC = StudySpec(setups=("MaFIN-x86",), benchmarks=("sha",),
                 structures=("int_rf",), fault_types=("transient",),
                 injections=3, seed=7)


def synthetic_study(study_dir):
    """A hand-written journal: no simulator, fully deterministic."""
    study_dir.mkdir(parents=True, exist_ok=True)
    units = ["MaFIN-x86/sha/int_rf/transient",
             "GeFIN-x86/sha/int_rf/transient"]
    rows = [
        {"kind": "study", "spec": {"injections": 1843,
                                   "confidence": 0.99,
                                   "error_margin": 0.03},
         "spec_hash": "deadbeef0123", "units": units, "shard": None,
         "ts": 1000.0},
        {"kind": "unit", "unit": units[0], "state": "leased",
         "attempt": 1, "ts": 1001.0},
        {"kind": "unit", "unit": units[1], "state": "leased",
         "attempt": 1, "ts": 1001.5},
        {"kind": "unit", "unit": units[0], "state": "done",
         "counts": {"Masked": 1800, "SDC": 43}, "injections": 1843,
         "resumed": 0, "wall_s": 60.0, "ts": 1061.0},
        {"kind": "unit", "unit": units[1], "state": "failed",
         "attempt": 1, "reason": "crash", "detail": "worker died",
         "ts": 1030.0},
        {"kind": "unit", "unit": units[1], "state": "leased",
         "attempt": 2, "ts": 1031.0},
        {"kind": "unit", "unit": units[1], "state": "done",
         "counts": {"Masked": 1700, "SDC": 100, "DUE": 43},
         "injections": 1843, "resumed": 20, "wall_s": 55.0,
         "ts": 1086.0},
    ]
    (study_dir / "journal.jsonl").write_text(
        "".join(json.dumps(r) + "\n" for r in rows))
    return study_dir


class TestReportDeterminism:
    def test_byte_stable_across_renders(self, tmp_path):
        study_dir = synthetic_study(tmp_path / "study")
        first = report_study(study_dir)
        second = report_study(study_dir)
        assert first == second
        # And across processes-worth of fresh state: an explicit now.
        assert report_study(study_dir, now=1086.0) == first

    def test_written_file_matches_return(self, tmp_path):
        study_dir = synthetic_study(tmp_path / "study")
        out = tmp_path / "report.html"
        text = report_study(study_dir, out_path=out)
        assert out.read_text() == text


class TestReportContent:
    @pytest.fixture(scope="class")
    def html(self, tmp_path_factory):
        study_dir = synthetic_study(
            tmp_path_factory.mktemp("synth") / "study")
        return report_study(study_dir)

    def test_outcome_bars_with_wilson_intervals(self, html):
        assert "Outcome proportions by structure" in html
        assert CLASS_COLORS["Masked"] in html
        assert CLASS_COLORS["SDC"] in html
        assert "99% CI" in html                  # interval tooltips

    def test_converged_badge_at_paper_sample_size(self, html):
        # Both cells carry 1843 injections: the paper's 99%/3% rule.
        assert html.count("converged 99%/3%") == 2

    def test_structure_grouping_and_states(self, html):
        assert "<h3>int_rf</h3>" in html
        assert "sha / MaFIN-x86 / transient" in html
        assert "deadbeef0123" in html
        assert ">complete</span>" in html

    def test_timeline_includes_retry_spans(self, html):
        assert "Scheduler timeline" in html
        # Unit 1 has two lease spans (failed attempt, then done).
        assert html.count('title="done') >= 2
        assert 'title="failed' in html

    def test_self_contained(self, html):
        assert "<script" not in html
        assert "src=" not in html
        assert "href=" not in html
        assert "<style>" in html

    def test_incomplete_study_renders_running(self, tmp_path):
        study_dir = tmp_path / "study"
        study_dir.mkdir()
        rows = [
            {"kind": "study", "spec": {"injections": 10},
             "spec_hash": "feed", "units": ["a/b/c/d"], "shard": None,
             "ts": 1000.0},
            {"kind": "unit", "unit": "a/b/c/d", "state": "leased",
             "attempt": 1, "ts": 1001.0},
        ]
        (study_dir / "journal.jsonl").write_text(
            "".join(json.dumps(r) + "\n" for r in rows))
        html = report_study(study_dir)
        assert ">running</span>" in html
        assert "no data" in html                 # convergence badge

    def test_render_html_escapes_titles(self, tmp_path):
        study_dir = synthetic_study(tmp_path / "study")
        html = report_study(study_dir, title="<img src=x>")
        assert "<img" not in html
        assert "&lt;img" in html


class TestRealStudyReport:
    """End to end on an actual (tiny) simulator-backed study."""

    @pytest.fixture(scope="class")
    def study_dir(self, tmp_path_factory):
        study_dir = tmp_path_factory.mktemp("real") / "study"
        result = run_study(SPEC, study_dir, workers=1, fsync=False)
        assert result.ok
        return study_dir

    def test_report_from_live_classification(self, study_dir):
        html = report_study(study_dir)
        assert report_study(study_dir) == html   # byte-stable
        assert "int_rf" in html
        assert 'class="bar"' in html
        assert "checkpoint restores skipped" in html

    def test_cli_report_writes_file(self, study_dir, tmp_path, capsys):
        out = tmp_path / "r.html"
        rc = tools.main(["obs", "report", "--study-dir", str(study_dir),
                         "--out", str(out)])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_cli_report_stdout_without_out(self, study_dir, capsys):
        rc = tools.main(["obs", "report", "--study-dir", str(study_dir)])
        assert rc == 0
        assert capsys.readouterr().out.startswith("<!DOCTYPE html>")

    def test_cli_report_missing_dir(self, tmp_path, capsys):
        rc = tools.main(["obs", "report", "--study-dir",
                         str(tmp_path / "nope")])
        assert rc == 2
        assert "no journal" in capsys.readouterr().err

    def test_cli_serve_missing_dir(self, tmp_path, capsys):
        rc = tools.main(["obs", "serve", "--study-dir",
                         str(tmp_path / "nope")])
        assert rc == 2
        assert "no journal" in capsys.readouterr().err

    def test_cli_status_watch_exits_when_complete(self, study_dir,
                                                  capsys):
        rc = tools.main(["sched", "status", str(study_dir),
                         "--watch", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "rate" in out

    def test_cli_status_shows_convergence_columns(self, study_dir,
                                                  capsys):
        rc = tools.main(["sched", "status", str(study_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "eta" in out
        assert "±" in out                        # margin column


class TestAtomicWrites:
    """Derived outputs land whole (tmp + os.replace) — never a prefix."""

    def test_replaces_existing_content_atomically(self, tmp_path):
        out = tmp_path / "merged.json"
        out.write_text("old")
        atomic_write_text(out, "new contents")
        assert out.read_text() == "new contents"
        assert list(tmp_path.iterdir()) == [out]    # no tmp leftovers

    def test_failed_write_leaves_old_file_and_no_tmp(self, tmp_path,
                                                     monkeypatch):
        out = tmp_path / "report.html"
        out.write_text("intact")

        def boom(fd):
            raise OSError("disk full")

        monkeypatch.setattr("os.fsync", boom)
        with pytest.raises(OSError, match="disk full"):
            atomic_write_text(out, "torn" * 1000)
        assert out.read_text() == "intact"
        assert list(tmp_path.iterdir()) == [out]

    def test_report_study_writes_atomically(self, tmp_path):
        study_dir = synthetic_study(tmp_path / "study")
        out = tmp_path / "report.html"
        text = report_study(study_dir, out_path=out)
        assert out.read_text() == text
        assert not [p for p in tmp_path.iterdir()
                    if p.name.endswith(".tmp")]
