"""Parallel campaign runner: parallel must equal serial exactly."""

import multiprocessing as mp

import pytest

from repro.core.campaign import run_campaign
from repro.core.parallel import run_campaign_parallel

fork_only = pytest.mark.skipif(
    mp.get_start_method(True) == "spawn",
    reason="monkeypatching workers needs the fork start method")


@pytest.mark.parametrize("structure", ["int_rf", "l1d"])
def test_parallel_matches_serial(structure):
    serial = run_campaign("GeFIN-x86", "sha", structure, injections=8,
                          seed=21)
    parallel = run_campaign_parallel("GeFIN-x86", "sha", structure,
                                     injections=8, seed=21, workers=2)
    assert parallel.injections == serial.injections == 8
    assert parallel.classify() == serial.classify()
    # Record-by-record equality (merged back in mask order).
    for a, b in zip(serial.records, parallel.records):
        assert a.reason == b.reason
        assert a.output_hex == b.output_hex
        assert a.early_stop == b.early_stop


def test_parallel_unknown_structure():
    with pytest.raises(KeyError):
        run_campaign_parallel("GeFIN-x86", "sha", "nonsense",
                              injections=2, workers=2)


@fork_only
class TestWorkerFailurePaths:
    """A worker raising mid-injection must not hang or poison the pool."""

    def _patch_inject(self, monkeypatch, poison_ids):
        from repro.core.dispatcher import InjectorDispatcher
        original = InjectorDispatcher.inject

        def exploding(self, fault_set, early_stop=True):
            if fault_set.set_id in poison_ids:
                raise RuntimeError(f"injected bug for set {fault_set.set_id}")
            return original(self, fault_set, early_stop=early_stop)

        # Forked workers inherit the patched class.
        monkeypatch.setattr(InjectorDispatcher, "inject", exploding)

    def test_worker_exception_becomes_crash_record(self, monkeypatch):
        clean = run_campaign("GeFIN-x86", "sha", "int_rf", injections=6,
                             seed=21)           # reference, pre-patch
        self._patch_inject(monkeypatch, {3})
        result = run_campaign_parallel("GeFIN-x86", "sha", "int_rf",
                                       injections=6, seed=21, workers=2)
        assert result.injections == 6          # nothing lost, no hang
        bad = [r for r in result.records if r.set_id == 3]
        assert len(bad) == 1
        assert bad[0].reason == "sim-crash"
        assert "RuntimeError" in bad[0].detail
        assert result.classify()["Crash"] >= 1
        # The other five injections are untouched by the failure.
        for mine, ref in zip(result.records, clean.records):
            if mine.set_id != 3:
                assert mine.reason == ref.reason

    def test_progress_still_fires_in_mask_order(self, monkeypatch):
        self._patch_inject(monkeypatch, {1, 4})
        seen = []
        result = run_campaign_parallel(
            "GeFIN-x86", "sha", "int_rf", injections=6, seed=21, workers=2,
            progress=lambda i, n, rec: seen.append((i, n, rec.set_id)))
        assert [s[0] for s in seen] == [1, 2, 3, 4, 5, 6]
        assert [s[2] for s in seen] == [r.set_id for r in result.records]
        assert all(n == 6 for _, n, _ in seen)

    def test_every_injection_failing_still_drains(self, monkeypatch):
        self._patch_inject(monkeypatch, set(range(4)))
        result = run_campaign_parallel("GeFIN-x86", "sha", "l1d",
                                       injections=4, seed=21, workers=2)
        assert result.injections == 4
        assert result.classify()["Crash"] == 4
