"""Parallel campaign runner: parallel must equal serial exactly."""

import pytest

from repro.core.campaign import run_campaign
from repro.core.parallel import run_campaign_parallel


@pytest.mark.parametrize("structure", ["int_rf", "l1d"])
def test_parallel_matches_serial(structure):
    serial = run_campaign("GeFIN-x86", "sha", structure, injections=8,
                          seed=21)
    parallel = run_campaign_parallel("GeFIN-x86", "sha", structure,
                                     injections=8, seed=21, workers=2)
    assert parallel.injections == serial.injections == 8
    assert parallel.classify() == serial.classify()
    # Record-by-record equality (merged back in mask order).
    for a, b in zip(serial.records, parallel.records):
        assert a.reason == b.reason
        assert a.output_hex == b.output_hex
        assert a.early_stop == b.early_stop


def test_parallel_unknown_structure():
    with pytest.raises(KeyError):
        run_campaign_parallel("GeFIN-x86", "sha", "nonsense",
                              injections=2, workers=2)
