"""The live observability layer: tailers, convergence, view, server.

The StudyView/StatusServer tests run one real (tiny) study per module
and then watch its directory the way ``obs serve`` and ``sched status
--watch`` do; the streaming test races a second study against an
/events reader to prove the NDJSON stream is ordered and terminates.
"""

import json
import math
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.sampling import required_injections, z_score
from repro.obs.convergence import (cell_convergence, proportion_ci,
                                   wilson_interval)
from repro.obs.live import JSONLTailer, StudyView, load_study_view
from repro.obs.server import StatusServer
from repro.sched import StudySpec, load_journal, run_study, study_status

TWO_SETUPS = ("MaFIN-x86", "GeFIN-x86")


def spec(**over):
    base = dict(setups=TWO_SETUPS, benchmarks=("sha",),
                structures=("int_rf",), fault_types=("transient",),
                injections=4, seed=7)
    base.update(over)
    return StudySpec(**base)


@pytest.fixture(scope="module")
def done_study(tmp_path_factory):
    """One completed two-unit study, shared by the read-only tests."""
    study_dir = tmp_path_factory.mktemp("study")
    result = run_study(spec(), study_dir, workers=2, fsync=False,
                       heartbeat_s=0.05)
    assert result.ok
    return study_dir, result


class TestJSONLTailer:
    def test_consumes_only_complete_lines(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"a": 1}\n{"a": 2}\n{"a": 3, "tor')
        tail = JSONLTailer(path)
        assert tail.poll() == [{"a": 1}, {"a": 2}]
        assert tail.poll() == []              # torn tail stays buffered
        with open(path, "a") as fh:
            fh.write('n": true}\n{"a": 4}\n')
        assert tail.poll() == [{"a": 3, "torn": True}, {"a": 4}]

    def test_missing_file_is_empty_not_error(self, tmp_path):
        tail = JSONLTailer(tmp_path / "absent.jsonl")
        assert tail.poll() == []

    def test_truncation_resets_to_start(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"a": 1}\n{"a": 2}\n')
        tail = JSONLTailer(path)
        assert len(tail.poll()) == 2
        path.write_text('{"b": 1}\n')          # rotated underneath us
        assert tail.poll() == [{"b": 1}]

    def test_bad_complete_line_skipped_and_counted(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"a": 1}\nnot json at all\n{"a": 2}\n')
        tail = JSONLTailer(path)
        assert tail.poll() == [{"a": 1}, {"a": 2}]
        assert tail.bad_lines == 1


class TestWilson:
    def test_closed_form_values(self):
        # Independent arithmetic: Wilson at k=50/n=100.
        z = z_score(0.99)
        n, p = 100, 0.5
        denom = 1 + z * z / n
        center = (p + z * z / (2 * n)) / denom
        spread = (z / denom) * math.sqrt(
            p * (1 - p) / n + z * z / (4 * n * n))
        lo, hi = wilson_interval(50, 100, confidence=0.99)
        assert lo == pytest.approx(center - spread, abs=1e-12)
        assert hi == pytest.approx(center + spread, abs=1e-12)

    def test_stays_inside_unit_interval_at_extremes(self):
        lo, hi = wilson_interval(0, 30)
        assert lo == 0.0 and 0.0 < hi < 0.35
        lo, hi = wilson_interval(30, 30)
        assert 0.65 < lo < 1.0 and hi == 1.0

    def test_vacuous_without_data(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_rejects_impossible_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)

    def test_proportion_ci_fields(self):
        ci = proportion_ci(10, 40)
        assert ci["count"] == 10
        assert ci["proportion"] == 0.25
        assert ci["lo"] < 0.25 < ci["hi"]
        assert ci["halfwidth"] == pytest.approx(
            (ci["hi"] - ci["lo"]) / 2)

    def test_narrows_with_more_injections(self):
        widths = [cell_convergence({"Masked": n // 2,
                                    "SDC": n - n // 2})["margin"]
                  for n in (50, 200, 800, 3200)]
        assert widths == sorted(widths, reverse=True)

    def test_paper_sample_size_converges_worst_case(self):
        # 1843 injections buy ±3% at 99% even at the conservative
        # p=0.5 worst case (§III.C / Leveugle et al.) — and Wilson is
        # slightly tighter than the Wald sizing, so the rule holds.
        n = required_injections(confidence=0.99, error_margin=0.03)
        assert n == 1843
        conv = cell_convergence({"Masked": n // 2, "SDC": n - n // 2})
        assert conv["converged"]
        assert conv["required_n"] == 1843
        # Far short of the sample size, a balanced cell is not there.
        early = cell_convergence({"Masked": 200, "SDC": 200})
        assert not early["converged"]
        assert early["margin"] > 0.03

    def test_lopsided_cell_converges_early(self):
        # A 99%-Masked cell is tight long before 1843 injections.
        conv = cell_convergence({"Masked": 990, "SDC": 10})
        assert conv["converged"]
        assert conv["n"] == 1000


class TestStudyView:
    def test_snapshot_of_completed_study(self, done_study):
        study_dir, result = done_study
        view = load_study_view(study_dir)
        snap = view.snapshot()
        assert snap["units"] == 2
        assert snap["complete"]
        assert snap["tally"]["done"] == 2
        assert snap["injections_done"] == 8
        assert snap["progress"]["planned_injections"] == 8
        assert snap["progress"]["eta_s"] == 0.0
        assert snap["heartbeat_age_s"] is not None
        for cell in snap["cells"]:
            assert sum(cell["counts"].values()) == 4
            assert cell["convergence"]["n"] == 4
            assert not cell["stalled"]
        # Live classification agrees with the journal's done records.
        by_unit = load_journal(study_dir / "journal.jsonl").counts_by_unit()
        for cell in snap["cells"]:
            assert cell["counts"] == by_unit[cell["unit"]]

    def test_snapshot_deterministic_for_fixed_now(self, done_study):
        study_dir, _ = done_study
        a = load_study_view(study_dir).snapshot(now=1.5e9)
        b = load_study_view(study_dir).snapshot(now=1.5e9)
        assert a == b

    def test_agrees_with_journal_only_status(self, done_study):
        study_dir, _ = done_study
        old = study_status(study_dir)
        snap = load_study_view(study_dir).snapshot()
        assert snap["tally"] == old["tally"]
        assert snap["spec_hash"] == old["spec_hash"]
        assert snap["injections_done"] >= old["injections_done"]

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_study_view(tmp_path / "nope")

    def test_prejournal_snapshot_is_wellformed_queued(self, tmp_path):
        # A study directory ahead of the scheduler's first journal
        # line (service-admitted, waiting for a worker slot) must
        # still yield a coherent snapshot rather than an error.
        view = StudyView(tmp_path)
        view.refresh(now=1000.0)
        assert view.state() == "queued"
        snap = view.snapshot(now=1000.0)
        assert snap["state"] == "queued"
        assert not snap["complete"]
        assert snap["injections_done"] == 0
        assert snap["cells"] == []

    def test_state_progression(self, tmp_path, done_study):
        journal = tmp_path / "journal.jsonl"
        rows = [
            {"kind": "study", "spec": {"injections": 4},
             "spec_hash": "cafe", "units": ["u/a/b/c"], "shard": None,
             "ts": 1000.0},
        ]
        journal.write_text("".join(json.dumps(r) + "\n" for r in rows))
        view = StudyView(tmp_path)
        assert view.refresh(now=1000.0).state() == "queued"
        with open(journal, "a") as fh:
            fh.write(json.dumps({"kind": "unit", "unit": "u/a/b/c",
                                 "state": "leased", "attempt": 1,
                                 "ts": 1001.0}) + "\n")
        assert view.refresh(now=1001.0).state() == "running"
        done_dir, _ = done_study
        assert load_study_view(done_dir).state() == "complete"

    def test_incremental_journal_tailing_with_torn_row(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        header = {"kind": "study", "spec": {"injections": 4},
                  "spec_hash": "cafe", "units": ["u/a/b/c"],
                  "shard": None, "ts": 1000.0}
        lease = {"kind": "unit", "unit": "u/a/b/c", "state": "leased",
                 "attempt": 1, "ts": 1001.0}
        done = {"kind": "unit", "unit": "u/a/b/c", "state": "done",
                "counts": {"Masked": 4}, "injections": 4,
                "resumed": 0, "wall_s": 1.0, "ts": 1002.0}
        done_line = json.dumps(done) + "\n"
        journal.write_text(json.dumps(header) + "\n"
                           + json.dumps(lease) + "\n"
                           + done_line[:25])      # crash mid-append
        view = StudyView(tmp_path)
        view.refresh(now=1001.0)
        assert view.units["u/a/b/c"].state == "leased"
        assert [t["seq"] for t in view.transitions] == [0]
        with open(journal, "a") as fh:            # the retry lands it
            fh.write(done_line[25:])
        view.refresh(now=1002.0)
        assert view.units["u/a/b/c"].state == "done"
        assert view.complete()
        assert view.injections_done() == 4
        assert [t["seq"] for t in view.transitions] == [0, 1]

    def test_stall_detection_from_lease_age(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        rows = [
            {"kind": "study", "spec": {"injections": 4},
             "spec_hash": "cafe", "units": ["u/a/b/c"], "shard": None,
             "ts": 1000.0},
            {"kind": "unit", "unit": "u/a/b/c", "state": "leased",
             "attempt": 1, "ts": 1000.0},
        ]
        journal.write_text("".join(json.dumps(r) + "\n" for r in rows))
        view = StudyView(tmp_path, stall_after_s=60.0)
        view.refresh(now=1000.0)
        assert view.stalled_units(now=1030.0) == []
        assert view.stalled_units(now=1100.0) == ["u/a/b/c"]
        snap = view.snapshot(now=1100.0)
        assert snap["stalled"] == ["u/a/b/c"]
        assert snap["cells"][0]["lease_age_s"] == pytest.approx(100.0)


def _get(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.getcode(), resp.read()


@pytest.fixture()
def served(done_study):
    study_dir, result = done_study
    server = StatusServer(study_dir, port=0)
    ready = threading.Event()
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs=dict(on_ready=lambda s: ready.set()), daemon=True)
    thread.start()
    assert ready.wait(10.0), "server never bound"
    yield f"http://127.0.0.1:{server.port}", study_dir, result
    server.stop()
    thread.join(10.0)


class TestStatusServer:
    def test_status_endpoint(self, served):
        base, study_dir, _ = served
        code, body = _get(base + "/status")
        assert code == 200
        snap = json.loads(body)
        assert snap["units"] == 2
        assert snap["complete"]
        assert snap["tally"]["done"] == 2

    def test_events_stream_ordered_and_terminated(self, served):
        base, study_dir, _ = served
        code, body = _get(base + "/events")
        assert code == 200
        rows = [json.loads(line) for line in body.decode().splitlines()]
        # Transition rows in journal order, then the terminator.
        assert rows[-1]["name"] == "study_complete"
        seqs = [r["seq"] for r in rows[:-1]]
        assert seqs == sorted(seqs) == list(range(len(seqs)))
        final = rows[-1]
        assert final["complete"]
        by_unit = load_journal(study_dir / "journal.jsonl").counts_by_unit()
        assert final["units"] == by_unit
        assert final["injections_done"] == 8

    def test_events_since_skips_replay(self, served):
        base, _, _ = served
        _, full = _get(base + "/events")
        n = len(full.decode().splitlines())
        _, partial = _get(base + f"/events?since={n - 1}")
        # Everything already seen is skipped; terminator still arrives.
        rows = [json.loads(line)
                for line in partial.decode().splitlines()]
        assert rows[-1]["name"] == "study_complete"
        assert len(rows) == 1

    def test_dashboard_is_self_contained(self, served):
        base, _, _ = served
        code, body = _get(base + "/")
        page = body.decode()
        assert code == 200
        assert "/status" in page
        assert "src=" not in page and "href=" not in page

    def test_unknown_path_404(self, served):
        base, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base + "/nope")
        assert err.value.code == 404

    def test_post_rejected(self, served):
        base, _, _ = served
        req = urllib.request.Request(base + "/status", data=b"x",
                                     method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10.0)
        assert err.value.code == 405

    def test_status_before_first_journal_line(self, tmp_path):
        # obs serve started ahead of sched run (or on a queued service
        # study): /status answers a well-formed "queued" snapshot.
        server = StatusServer(tmp_path, port=0)
        ready = threading.Event()
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs=dict(on_ready=lambda s: ready.set()), daemon=True)
        thread.start()
        assert ready.wait(10.0)
        try:
            code, body = _get(f"http://127.0.0.1:{server.port}/status")
            snap = json.loads(body)
            assert code == 200
            assert snap["state"] == "queued"
            assert snap["units"] == 0 and not snap["complete"]
        finally:
            server.stop()
            thread.join(10.0)


class TestLiveStreaming:
    def test_events_follow_a_running_study(self, tmp_path):
        """Start the server first, run the study under it, read the
        NDJSON stream to EOF: ordered transitions, then the terminator
        whose totals match the finished journal."""
        study_dir = tmp_path / "live"
        server = StatusServer(study_dir, port=0)
        ready = threading.Event()
        srv_thread = threading.Thread(
            target=server.serve_forever,
            kwargs=dict(on_ready=lambda s: ready.set()), daemon=True)
        srv_thread.start()
        assert ready.wait(10.0)
        try:
            results = {}

            def run():
                results["study"] = run_study(
                    spec(injections=3), study_dir, workers=2, fsync=False)

            study_thread = threading.Thread(target=run)
            study_thread.start()
            url = f"http://127.0.0.1:{server.port}/events"
            code, body = _get(url, timeout=120.0)   # blocks until EOF
            study_thread.join(120.0)
            assert code == 200
            assert results["study"].ok
            rows = [json.loads(line)
                    for line in body.decode().splitlines()]
            assert rows[-1]["name"] == "study_complete"
            seqs = [r["seq"] for r in rows[:-1]]
            assert seqs == sorted(seqs)
            states = [r["state"] for r in rows[:-1]]
            assert states.count("done") == 2
            by_unit = load_journal(
                study_dir / "journal.jsonl").counts_by_unit()
            assert rows[-1]["units"] == by_unit
            assert rows[-1]["tally"]["done"] == 2
        finally:
            server.stop()
            srv_thread.join(10.0)
