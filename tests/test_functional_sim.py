"""Unit tests for the functional reference simulator."""

import pytest

from repro.sim.functional import FunctionalSim, run_program

from tests.helpers import (EXIT_ARM, EXIT_X86, assemble_arm, assemble_x86,
                           tiny_program)


class TestBasicExecution:
    def test_exit_code(self):
        prog = assemble_x86("li r0, 2\nli r1, 42\nsyscall\n")
        res = run_program(prog)
        assert res.reason == "exit" and res.exit_code == 42

    def test_instruction_limit(self):
        prog = assemble_x86("spin: jmp spin\n")
        res = run_program(prog, )
        # run with a small limit
        sim = FunctionalSim(prog)
        out = sim.run(max_instrs=100)
        assert out.reason == "limit"
        assert out.stats["instrs"] == 100

    def test_stack_operations(self):
        prog = assemble_x86("""
  li r3, 7
  push r3
  li r3, 0
  pop r4
  mov r1, r4
  li r0, 2
  syscall
""")
        assert run_program(prog).exit_code == 7

    def test_call_ret(self):
        prog = assemble_x86("""
  call fn
  mov r1, r0
  li r0, 2
  syscall
fn:
  li r0, 33
  ret
""")
        assert run_program(prog).exit_code == 33

    def test_arm_bl_bx(self):
        prog = assemble_arm("""
  bl fn
  mov r1, r0
  li r0, 2
  svc
fn:
  li r0, 44
  bx lr
""")
        assert run_program(prog).exit_code == 44

    def test_flags_over_nonflag_ops(self):
        # Only cmp writes FLAGS; an add between cmp and jcc must not
        # disturb the condition.
        prog = assemble_x86("""
  li r1, 5
  cmp r1, 5
  add r1, 90
  jeq yes
  li r1, 0
yes:
  li r0, 2
  syscall
""")
        assert run_program(prog).exit_code == 95

    def test_byte_loads_zero_extend(self):
        prog = assemble_x86("""
  li r1, =data
  load8 r2, [r1+0]
  mov r1, r2
  li r0, 2
  syscall
""", data="data: .byte 255\n")
        assert run_program(prog).exit_code == 255


class TestFaults:
    def test_undefined_instruction(self):
        prog = assemble_x86("", data="")
        # Patch an undefined opcode right at the entry.
        sec = prog.sections[0]
        prog.sections[0] = type(sec)(sec.base, b"\xff", sec.writable,
                                     sec.executable)
        res = run_program(prog)
        assert res.reason == "killed:SIGILL"

    def test_null_load(self):
        prog = assemble_x86("li r1, 0\nload r0, [r1+0]\n" + EXIT_X86)
        assert run_program(prog).reason == "killed:SIGSEGV"

    def test_div_by_zero(self):
        prog = assemble_x86("li r0, 3\nli r1, 0\ndiv r0, r1\n" + EXIT_X86)
        assert run_program(prog).reason == "killed:SIGFPE"

    def test_kernel_page_protected_from_user(self):
        prog = assemble_x86("""
  li r1, =kaddr
  load r1, [r1+0]
  load r0, [r1+0]
""" + EXIT_X86, data="kaddr: .word 241664\n")  # 0x3B000 region
        sim = FunctionalSim(prog)
        # Point at the actual kernel page for this memory size.
        import struct
        struct.pack_into("<I", sim.mem.data,
                         sim.program.sections[1].base,
                         sim.kernel.kdata_base)
        out = sim.run()
        assert out.reason == "killed:SIGSEGV"

    def test_arm_unaligned_fixup_event(self):
        prog = assemble_arm("""
  li r1, =buf
  add r1, r1, 2
  li r2, 9
  str r2, [r1+0]
  ldr r3, [r1+0]
  mov r1, r3
  li r0, 2
  svc
""", data="buf: .space 8\n")
        res = run_program(prog)
        assert res.exit_code == 9
        assert res.events.count("align-fixup") == 2

    def test_x86_unaligned_is_silent(self):
        prog = assemble_x86("""
  li r1, =buf
  add r1, 1
  li r2, 9
  store [r1+0], r2
  load r3, [r1+0]
  mov r1, r3
  li r0, 2
  syscall
""", data="buf: .space 8\n")
        res = run_program(prog)
        assert res.exit_code == 9
        assert res.events == []


class TestStatsAndOutput:
    def test_stats_populated(self):
        res = run_program(tiny_program("x86"))
        st = res.stats
        assert st["instrs"] > 0 and st["uops"] >= st["instrs"]
        assert st["loads"] > 0 and st["stores"] > 0
        assert st["branches"] > 0 and st["taken"] <= st["branches"]
        assert st["syscalls"] >= 4  # three out() calls plus exit

    def test_output_stream_order(self):
        prog = assemble_x86("""
  li r4, 1
loop:
  li r1, =buf
  store [r1+0], r4
  li r0, 1
  li r2, 4
  syscall
  add r4, 1
  cmp r4, 4
  jne loop
""" + EXIT_X86, data="buf: .space 4\n")
        res = run_program(prog)
        words = [int.from_bytes(res.output[i:i + 4], "little")
                 for i in range(0, len(res.output), 4)]
        assert words == [1, 2, 3]
