"""repro.guard containment: widened crash capture, budgets, watchdog."""

import sys
import time

import pytest

from repro.core.dispatcher import InjectorDispatcher
from repro.core.maskgen import FaultMaskGenerator, StructureInfo
from repro.core.outcome import CRASH, TIMEOUT
from repro.core.parser import classify
from repro.errors import CampaignError
from repro.guard import GuardPolicy, OpBudgetExceeded, WatchdogTimeout
from repro.guard.containment import contained
from repro.sim.config import setup_config

from tests.helpers import tiny_program


def _dispatcher(setup="GeFIN-x86", guard="off", **kw):
    config = setup_config(setup)
    d = InjectorDispatcher(config, tiny_program(config.isa), guard=guard,
                           **kw)
    d.run_golden()
    return d


def _one_set(dispatcher, structure="int_rf", seed=7):
    sites = dispatcher.fault_sites()
    info = StructureInfo.of_site(sites[structure])
    return FaultMaskGenerator(seed).generate(info,
                                             dispatcher.golden.cycles,
                                             count=1)[0]


def _raising_step(exc):
    def step():
        raise exc
    return step


# -- satellite: the crash-capture tuple, guard OFF --------------------------
#
# These exceptions killed whole campaigns before the tuple was widened:
# a fault-triggered MemoryError/RecursionError/StopIteration escaped
# inject() instead of classifying as Crash.  They must be contained even
# with every guard feature disabled.

@pytest.mark.parametrize("exc", [
    MemoryError("allocation blew up on corrupted state"),
    RecursionError("maximum recursion depth exceeded"),
    StopIteration("exhausted a corrupted event stream"),
], ids=lambda e: type(e).__name__)
def test_crash_tuple_contains_exception_with_guard_off(exc):
    d = _dispatcher(guard="off")
    fault_set = _one_set(d)
    d._sim.step = _raising_step(exc)
    try:
        record = d.inject(fault_set, early_stop=False)
    finally:
        del d._sim.step           # un-shadow the class method
    assert record.reason == "sim-crash"
    assert type(exc).__name__ in record.detail
    assert classify(record, d.golden) == CRASH


def test_machine_still_usable_after_contained_crash():
    d = _dispatcher(guard="off")
    fault_set = _one_set(d)
    d._sim.step = _raising_step(MemoryError("boom"))
    d.inject(fault_set, early_stop=False)
    del d._sim.step
    record = d.inject(_one_set(d, seed=8), early_stop=True)
    assert record.reason in ("exit", "deadlock", "cycle-limit",
                             "sim-crash", "assert", "panic", "killed")


# -- arbitrary-exception widening needs containment -------------------------

class Weird(Exception):
    """Not on the crash tuple: only containment may swallow it."""


def test_unknown_exception_escapes_with_guard_off():
    d = _dispatcher(guard="off")
    fault_set = _one_set(d)
    d._sim.step = _raising_step(Weird("novel failure mode"))
    try:
        with pytest.raises(Weird):
            d.inject(fault_set, early_stop=False)
    finally:
        del d._sim.step


def test_unknown_exception_contained_with_strict_guard():
    d = _dispatcher(guard="strict")
    fault_set = _one_set(d)
    d._sim.step = _raising_step(Weird("novel failure mode"))
    try:
        record = d.inject(fault_set, early_stop=False)
    finally:
        del d._sim.step
    assert record.reason == "sim-crash"
    assert "contained Weird" in record.detail


def test_campaign_error_always_propagates():
    """Configuration errors are bugs, never faulty-machine outcomes."""
    d = _dispatcher(guard="strict")
    fault_set = _one_set(d)
    d._sim.step = _raising_step(CampaignError("misconfigured campaign"))
    try:
        with pytest.raises(CampaignError):
            d.inject(fault_set, early_stop=False)
    finally:
        del d._sim.step


# -- op budget -------------------------------------------------------------

def test_op_budget_records_timeout_with_elapsed_time():
    tiny = GuardPolicy(name="tiny-budget", containment=True,
                       op_budget=20_000)
    d = _dispatcher(guard=tiny)
    fault_set = _one_set(d)
    record = d.inject(fault_set, early_stop=False)
    assert record.reason == "op-budget"
    assert record.elapsed_s > 0
    assert classify(record, d.golden) == TIMEOUT


def test_op_budget_scope_restores_profile_hook():
    sentinel_calls = []

    def sentinel(frame, event, arg):
        sentinel_calls.append(event)

    old = sys.getprofile()
    sys.setprofile(sentinel)
    try:
        policy = GuardPolicy(name="p", containment=True, op_budget=10 ** 9)
        with contained(policy):
            assert sys.getprofile() is not sentinel
        assert sys.getprofile() is sentinel
    finally:
        sys.setprofile(old)


def test_recursion_ceiling_applies_and_restores():
    policy = GuardPolicy(name="p", containment=True, recursion_limit=120)
    old = sys.getrecursionlimit()
    with contained(policy):
        assert sys.getrecursionlimit() == min(old, 120)

        def dive(n):
            return dive(n + 1)

        with pytest.raises(RecursionError):
            dive(0)
    assert sys.getrecursionlimit() == old


def test_recursion_ceiling_never_raises_the_limit():
    policy = GuardPolicy(name="p", containment=True,
                         recursion_limit=10 ** 9)
    old = sys.getrecursionlimit()
    with contained(policy):
        assert sys.getrecursionlimit() == old
    assert sys.getrecursionlimit() == old


# -- watchdog --------------------------------------------------------------

def test_watchdog_interrupts_a_hung_step():
    policy = GuardPolicy(name="p", containment=True)
    d = _dispatcher(guard=policy, timeout_s=0.15)
    fault_set = _one_set(d)

    def hang():
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < 30:
            pass                  # burn CPU inside "one step"

    d._sim.step = hang
    try:
        record = d.inject(fault_set, early_stop=False)
    finally:
        del d._sim.step
    assert record.reason == "wall-clock"
    assert "watchdog" in record.detail
    assert record.elapsed_s > 0
    assert classify(record, d.golden) == TIMEOUT


def test_watchdog_deadline_defaults_to_twice_timeout():
    policy = GuardPolicy(name="p", containment=True)
    assert policy.watchdog_deadline(2.0) == 4.0
    assert policy.watchdog_deadline(None) is None
    explicit = GuardPolicy(name="p", containment=True, watchdog_s=9.0)
    assert explicit.watchdog_deadline(2.0) == 9.0
    off = GuardPolicy(name="off")
    assert off.watchdog_deadline(2.0) is None


def test_contained_scope_raises_guard_exceptions_as_expected():
    with pytest.raises(OpBudgetExceeded):
        policy = GuardPolicy(name="p", containment=True, op_budget=5)
        with contained(policy):
            sum(i for i in range(100))
    with pytest.raises(WatchdogTimeout):
        policy = GuardPolicy(name="p", containment=True)
        with contained(policy, watchdog_s=0.05):
            t0 = time.perf_counter()
            while time.perf_counter() - t0 < 30:
                pass


def test_null_scope_when_containment_off():
    assert contained(None) is contained(GuardPolicy(name="off"))
    with contained(None):
        pass
