"""The distributed fleet's safety net: fences, heartbeats, GC, auth.

Everything the network can do wrong to a remote lease — duplicated
completes, zombies finishing revoked work, a server restart wiping the
registrations, a worker going silent — must resolve to the same
at-most-once journal an all-local run writes.  These tests drive the
service's remote protocol directly (no HTTP) so every race is staged
deterministically, then cover the HTTP-only layers (auth, keepalives,
blob serving) against a live server.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.sched import DONE, CampaignPlan, StudySpec
from repro.sched.plan import WorkUnit
from repro.sched.scheduler import EVENTS_NAME
from repro.svc import (CampaignService, ServiceServer, StaleFence,
                       TenantPolicy, UnknownWorker, collect_garbage,
                       load_service)
from repro.svc.chaos import NULL_CHAOS, ChaosDrop, TransportChaos
from repro.svc.fleet import pack_text, unpack_text

SETUP = "MaFIN-x86"


def spec(**over):
    base = dict(setups=(SETUP,), benchmarks=("sha",),
                structures=("int_rf",), fault_types=("transient",),
                injections=2, seed=7)
    base.update(over)
    return StudySpec(**base)


def ok_result(counts=None):
    """A minimal successful unit result, shaped like the pool worker's."""
    return {"ok": True, "counts": counts or {"masked": 2},
            "injections": 2, "early_stops": 0, "resumed": False,
            "wall_s": 0.01, "events": [], "metrics": {}}


def done_rows(journal_path):
    out = {}
    for line in journal_path.read_text().splitlines():
        row = json.loads(line)
        if row.get("state") == DONE:
            out[row["unit"]] = out.get(row["unit"], 0) + 1
    return out


def wire_uid(wire):
    """The unit id carried by a lease's wire payload."""
    return WorkUnit.from_dict(wire["unit"]).unit_id


def remote_service(root, **over):
    """A service with no local slots: every unit must go remote.

    Zero retry backoff so a revoked unit is re-leasable immediately —
    these tests stage the races, they don't want to wait them out.
    """
    kw = dict(workers=0, fsync=False, backoff_s=0.0)
    kw.update(over)
    return CampaignService(root, **kw)


class TestChaosDirective:
    def test_unset_is_the_null_singleton(self):
        assert TransportChaos.from_env({}) is NULL_CHAOS
        assert TransportChaos.from_env({"REPRO_SVC_CHAOS": "  "}) \
            is NULL_CHAOS
        assert not NULL_CHAOS.enabled

    def test_full_directive_parses(self):
        chaos = TransportChaos.from_env(
            {"REPRO_SVC_CHAOS":
             "drop=0.2, dup=0.1,delay=0.05,disconnect=0.3,seed=7"})
        assert (chaos.drop, chaos.dup, chaos.delay, chaos.disconnect) \
            == (0.2, 0.1, 0.05, 0.3)
        assert chaos.enabled

    def test_bad_directives_name_the_problem(self):
        with pytest.raises(ValueError, match="keys:"):
            TransportChaos.from_env({"REPRO_SVC_CHAOS": "explode=1"})
        with pytest.raises(ValueError, match="wants a number"):
            TransportChaos.from_env({"REPRO_SVC_CHAOS": "drop=lots"})
        with pytest.raises(ValueError, match=r"in \[0, 1\]"):
            TransportChaos(drop=1.5)
        with pytest.raises(ValueError, match="delay"):
            TransportChaos(delay=-1.0)

    def test_seeded_decisions_are_reproducible(self):
        a = TransportChaos(drop=0.5, seed=42)
        b = TransportChaos(drop=0.5, seed=42)
        def outcomes(c):
            seen = []
            for _ in range(20):
                try:
                    c.before_request()
                    seen.append(False)
                except ChaosDrop:
                    seen.append(True)
            return seen
        assert outcomes(a) == outcomes(b)
        assert any(outcomes(TransportChaos(drop=0.5, seed=1)))


class TestPackCodecs:
    def test_text_roundtrip_is_exact(self):
        text = '{"a": 1}\n{"b": 2}\n'
        assert unpack_text(pack_text(text)) == text


class TestFencing:
    """At-most-once completes, staged without any network."""

    def test_duplicate_complete_is_a_detected_noop(self, tmp_path):
        with remote_service(tmp_path) as svc:
            sid = svc.submit(spec(), tenant="alice")
            svc.register_worker("w1")
            wire = svc.lease_remote("w1")
            fence = wire["fence"]
            first = svc.complete_remote({"fence": fence,
                                         "result": ok_result()})
            assert first == {"accepted": True, "duplicate": False}
            # The retry of a complete whose response was lost.
            second = svc.complete_remote({"fence": fence,
                                          "result": ok_result()})
            assert second == {"accepted": False, "duplicate": True}
            svc.tick()
            assert svc.study_status(sid)["state"] == "done"
            journal = tmp_path / "studies" / sid / "journal.jsonl"
            assert done_rows(journal) == {wire_uid(wire): 1}
            assert svc.metrics.counter_value(
                "svc.remote.dup_completes") == 1

    def test_cancel_revokes_the_fence(self, tmp_path):
        with remote_service(tmp_path) as svc:
            sid = svc.submit(spec(), tenant="alice")
            svc.register_worker("w1")
            wire = svc.lease_remote("w1")
            svc.cancel(sid)
            # The zombie finishes anyway; its fence died with the study.
            with pytest.raises(StaleFence):
                svc.complete_remote({"fence": wire["fence"],
                                     "result": ok_result()})
            assert svc.metrics.counter_value(
                "svc.remote.stale_fences") == 1

    def test_reregistration_revokes_prior_leases(self, tmp_path):
        with remote_service(tmp_path) as svc:
            svc.submit(spec(), tenant="alice")
            svc.register_worker("w1")
            wire = svc.lease_remote("w1")
            svc.tick()
            # The agent restarted: same name, empty hands.
            svc.register_worker("w1")
            with pytest.raises(StaleFence):
                svc.complete_remote({"fence": wire["fence"],
                                     "result": ok_result()})
            svc.tick()
            # The revoked unit went back through the retry path.
            assert svc.lease_remote("w1")["attempt"] == 2

    def test_heartbeat_lists_fences_to_kill(self, tmp_path):
        with remote_service(tmp_path) as svc:
            svc.submit(spec(), tenant="alice")
            svc.register_worker("w1")
            wire = svc.lease_remote("w1")
            svc.register_worker("w1")      # revokes the lease
            out = svc.worker_heartbeat("w1", [wire["fence"]])
            assert out == {"revoked": [wire["fence"]]}
            with pytest.raises(UnknownWorker):
                svc.worker_heartbeat("ghost", [])

    def test_lost_lease_reclaimed_after_grace(self, tmp_path):
        with remote_service(tmp_path, lease_heartbeat_s=5.0) as svc:
            svc.submit(spec(), tenant="alice")
            svc.register_worker("w1")
            wire = svc.lease_remote("w1")
            lease = svc.fleet.remote_leases[wire["fence"]]
            # The lease response never reached the worker: it keeps
            # heartbeating empty-handed.  Within the grace window the
            # server waits...
            svc.fleet.heartbeat("w1", [], now=lease.started + 1.0)
            assert wire["fence"] in svc.fleet.remote_leases
            # ...past it, the orphan is reclaimed and re-queued.
            svc.fleet.heartbeat("w1", [], now=lease.started + 6.0)
            assert wire["fence"] not in svc.fleet.remote_leases
            with pytest.raises(StaleFence):
                svc.complete_remote({"fence": wire["fence"],
                                     "result": ok_result()})

    def test_silent_worker_loses_everything(self, tmp_path):
        with remote_service(tmp_path, lease_heartbeat_s=5.0,
                            miss_budget=3) as svc:
            svc.submit(spec(), tenant="alice")
            svc.register_worker("w1")
            wire = svc.lease_remote("w1")
            svc.tick()
            assert "w1" in svc.fleet.remote_workers
            svc.tick(now=time.monotonic() + 16.0)   # > 5s * 3 misses
            assert "w1" not in svc.fleet.remote_workers
            assert svc.fleet.remote_leases == {}
            assert svc.metrics.counter_value(
                "svc.remote.workers_lost") == 1
            # The unit is queued again for whoever shows up next.
            svc.register_worker("w2")
            redo = svc.lease_remote("w2", now=time.monotonic() + 17.0)
            assert redo["unit"] == wire["unit"]
            assert redo["attempt"] == 2


class TestRestart:
    """Server restart: epoch fencing + lossless resume, no double runs."""

    def test_old_epoch_fences_rejected_and_done_units_not_rerun(
            self, tmp_path):
        sp = spec(structures=("int_rf", "l1d"))
        svc1 = remote_service(tmp_path)
        sid = svc1.submit(sp, tenant="alice")
        svc1.register_worker("w1")
        wire_a = svc1.lease_remote("w1")
        assert svc1.complete_remote(
            {"fence": wire_a["fence"], "result": ok_result()})["accepted"]
        svc1.tick()
        wire_b = svc1.lease_remote("w1")   # in flight at the crash
        assert wire_a["fence"].startswith("1-")
        svc1.close()

        svc2 = remote_service(tmp_path)
        # The epoch outlived the crash; the registrations did not.
        assert svc2.fleet.fence_epoch == 2
        assert svc2.fleet.remote_workers == {}
        with pytest.raises(StaleFence):
            svc2.complete_remote({"fence": wire_b["fence"],
                                  "result": ok_result()})
        # Only the interrupted unit is pending; the DONE one survived.
        run = svc2.runs[sid]
        assert [u.unit_id for u in run.pending_units()] \
            == [wire_uid(wire_b)]
        svc2.register_worker("w1")
        redo = svc2.lease_remote("w1")
        assert wire_uid(redo) == wire_uid(wire_b)
        assert redo["attempt"] == 2        # the stale lease was spent
        assert redo["fence"].startswith("2-")
        assert svc2.complete_remote(
            {"fence": redo["fence"], "result": ok_result()})["accepted"]
        svc2.tick()
        assert svc2.study_status(sid)["state"] == "done"
        journal = tmp_path / "studies" / sid / "journal.jsonl"
        assert all(n == 1 for n in done_rows(journal).values())
        svc2.close()

        # The telemetry tells the same story end to end.
        from repro.obs.summarize import load_events, summarize_events
        summary = summarize_events(
            load_events(tmp_path / "service-events.jsonl"))
        assert summary["fleet"]["registrations"] == 2
        assert summary["fleet"]["rejected_fences"] == 1
        study_summary = summarize_events(
            load_events(tmp_path / "studies" / sid / EVENTS_NAME))
        assert study_summary["fleet"]["remote_leases"] == 3


class TestVerbatimRecords:
    def test_completed_files_land_byte_identical(self, tmp_path):
        logs_text = '{"inj": 0, "class": "masked"}\n{"inj": 1}\n'
        masks_text = '{"mask": "0x1"}\n'
        # Synthetic (non-record) payloads: only an unattested service
        # lands them verbatim — attestation would 422 them at ingest.
        with remote_service(tmp_path, attest=False) as svc:
            sid = svc.submit(spec(), tenant="alice")
            svc.register_worker("w1")
            wire = svc.lease_remote("w1")
            svc.complete_remote({"fence": wire["fence"],
                                 "result": ok_result(),
                                 "logs": pack_text(logs_text),
                                 "masks": pack_text(masks_text)})
            study_dir = tmp_path / "studies" / sid
            fid = WorkUnit.from_dict(wire["unit"]).file_id
            logs = study_dir / "logs" / f"{fid}.jsonl"
            masks = study_dir / "masks" / f"{fid}.jsonl"
            assert logs.read_text() == logs_text
            assert masks.read_text() == masks_text


class TestGarbageCollection:
    def _finished_study(self, root):
        with CampaignService(root, workers=1, fsync=False) as svc:
            sid = svc.submit(spec(), tenant="alice")
            svc.run_until_idle(timeout_s=120)
        return sid

    def test_dry_run_then_purge_then_resweep(self, tmp_path):
        sid = self._finished_study(tmp_path)
        study_dir = tmp_path / "studies" / sid
        keep = TenantPolicy(retention_s=3600.0)
        toss = TenantPolicy(retention_s=0.0)

        # Inside retention: nothing to do.
        out = collect_garbage(tmp_path, default_policy=keep)
        assert out["candidates"] == [] and out["purged"] == []

        # Dry run names the victim but touches nothing.
        out = collect_garbage(tmp_path, default_policy=toss, dry_run=True)
        assert [c["id"] for c in out["candidates"]] == [sid]
        assert out["dry_run"] and study_dir.exists()

        # The real sweep journals first, then deletes.
        out = collect_garbage(tmp_path, default_policy=toss)
        assert [c["id"] for c in out["purged"]] == [sid]
        assert not study_dir.exists()
        state = load_service(tmp_path / "service.jsonl")
        assert state.studies[sid].purged

        # Idempotent: the journal remembers the purge.
        out = collect_garbage(tmp_path, default_policy=toss)
        assert out["purged"] == [] and out["candidates"] == []

        # A sweep that died between journal row and rmtree leaves a
        # journaled-but-present dir; the next sweep finishes the job
        # without a second journal row.
        study_dir.mkdir(parents=True)
        (study_dir / "leftover.txt").write_text("crash debris")
        gc_rows_before = sum(
            1 for line in (tmp_path / "service.jsonl")
            .read_text().splitlines()
            if json.loads(line).get("kind") == "gc")
        out = collect_garbage(tmp_path, default_policy=toss)
        assert out["resweeps"] == [sid] and not study_dir.exists()
        gc_rows_after = sum(
            1 for line in (tmp_path / "service.jsonl")
            .read_text().splitlines()
            if json.loads(line).get("kind") == "gc")
        assert gc_rows_after == gc_rows_before == 1

    def test_retention_is_per_tenant(self, tmp_path):
        sid = self._finished_study(tmp_path)   # tenant "alice"
        out = collect_garbage(tmp_path,
                              policies={"bob": TenantPolicy(
                                  retention_s=0.0)})
        assert out["candidates"] == [] and out["purged"] == []
        assert (tmp_path / "studies" / sid).exists()
        out = collect_garbage(tmp_path,
                              policies={"alice": TenantPolicy(
                                  retention_s=0.0)})
        assert [c["id"] for c in out["purged"]] == [sid]

    def test_negative_retention_rejected(self):
        with pytest.raises(ValueError, match="retention_s"):
            TenantPolicy(retention_s=-1.0)


TOKEN = "shh-fleet-secret"


def _get(url, token=None, timeout=30.0):
    req = urllib.request.Request(url)
    if token is not None:
        req.add_header("Authorization", f"Bearer {token}")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


def _post(url, payload, token=None, timeout=30.0):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST",
        headers={"Content-Type": "application/json"})
    if token is not None:
        req.add_header("Authorization", f"Bearer {token}")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode())


@pytest.fixture(scope="class")
def served(tmp_path_factory):
    """A token-armed server with fast keepalives and zero local slots."""
    root = tmp_path_factory.mktemp("svc-remote")
    service = CampaignService(root, workers=0, fsync=False)
    server = ServiceServer(service, port=0, token=TOKEN, keepalive_s=0.2)
    ready = threading.Event()
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"on_ready": lambda s: ready.set()}, daemon=True)
    thread.start()
    assert ready.wait(10.0), "service never bound"
    yield f"http://127.0.0.1:{server.port}", service
    server.stop()
    thread.join(10.0)
    service.close()


class TestHttpFleet:
    def test_every_endpoint_requires_the_token(self, served):
        base, _ = served
        for probe in (lambda: _get(f"{base}/status"),
                      lambda: _get(f"{base}/status", token="wrong"),
                      lambda: _post(f"{base}/fleet/register",
                                    {"worker": "w"}),
                      lambda: _post(f"{base}/studies", {})):
            code, body = probe()
            assert code == 401
            row = json.loads(body) if isinstance(body, bytes) else body
            assert row["reason"] == "unauthorized"
        code, _ = _get(f"{base}/status", token=TOKEN)
        assert code == 200

    def test_register_heartbeat_and_unregistered_409(self, served):
        base, _ = served
        code, out = _post(f"{base}/fleet/register", {"worker": "w1"},
                          token=TOKEN)
        assert code == 200
        assert out["epoch"] >= 1 and out["heartbeat_s"] > 0
        code, out = _post(f"{base}/fleet/heartbeat",
                          {"worker": "w1", "fences": []}, token=TOKEN)
        assert code == 200 and out == {"revoked": []}
        code, out = _post(f"{base}/fleet/heartbeat",
                          {"worker": "ghost", "fences": []}, token=TOKEN)
        assert code == 409 and out["reason"] == "unregistered"

    def test_idle_lease_poll_carries_keepalives(self, served):
        base, _ = served
        _post(f"{base}/fleet/register", {"worker": "kw"}, token=TOKEN)
        req = urllib.request.Request(
            f"{base}/fleet/lease",
            data=json.dumps({"worker": "kw", "wait_s": 0.7}).encode(),
            method="POST",
            headers={"Authorization": f"Bearer {TOKEN}"})
        with urllib.request.urlopen(req, timeout=10.0) as resp:
            rows = [json.loads(line) for line in resp]
        # Quiet poll: at least one liveness line, then the verdict.
        assert any(r.get("keepalive") for r in rows[:-1])
        assert rows[-1] == {"lease": None}

    def test_lease_for_unknown_worker_is_unregistered(self, served):
        base, _ = served
        code, out = _post(f"{base}/fleet/lease", {"worker": "nobody"},
                          token=TOKEN)
        assert code == 409 and out["reason"] == "unregistered"

    def test_stale_fence_complete_is_409(self, served):
        base, _ = served
        code, out = _post(f"{base}/fleet/complete",
                          {"fence": "0-999", "worker": "w1",
                           "result": ok_result()}, token=TOKEN)
        assert code == 409 and out["reason"] == "stale-fence"

    def test_blob_store_is_content_addressed(self, served):
        base, service = served
        sp = spec()
        unit = next(iter(CampaignPlan.from_spec(sp)))
        blob = b"compressed golden payload"
        digest = service.fleet.cache.store(unit, sp, blob)
        code, data = _get(f"{base}/blobs/{digest}", token=TOKEN)
        assert code == 200 and data == blob
        code, _ = _get(f"{base}/blobs/{'0' * 64}", token=TOKEN)
        assert code == 404

    def test_events_stream_keepalive_on_idle_study(self, served):
        base, _ = served
        code, out = _post(f"{base}/studies",
                          {"tenant": "alice", "spec": {
                              "setups": [SETUP], "benchmarks": ["sha"],
                              "structures": ["int_rf"], "injections": 2,
                              "seed": 7}}, token=TOKEN)
        assert code == 202
        sid = out["id"]
        # No workers anywhere: the study idles, so the events stream's
        # only traffic is the keepalive heartbeat.
        req = urllib.request.Request(
            f"{base}/studies/{sid}/events",
            headers={"Authorization": f"Bearer {TOKEN}"})
        with urllib.request.urlopen(req, timeout=10.0) as resp:
            row = json.loads(resp.readline())
        assert row == {"keepalive": True}
