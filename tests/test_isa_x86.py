"""Unit tests for the x86-like ISA: encodings, decoding, cracking."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import x86
from repro.isa.common import REG_T0


def decode(raw: bytes, pc: int = 0x1000):
    window = raw + bytes(max(0, x86.MAX_ILEN - len(raw)))
    return x86.decode_window(window, pc)


class TestEncodeDecodeRoundtrip:
    def test_alu_rr(self):
        instr = decode(x86.encode_alu_rr("add", 3, 5))
        assert instr.mnemonic == "add"
        assert instr.length == 2
        uop = instr.uops[0]
        assert (uop.rd, uop.rs1, uop.rs2) == (3, 3, 5)

    def test_alu_imm_short_and_long(self):
        short = x86.encode_alu_ri("add", 2, 7)
        assert len(short) == 3
        long = x86.encode_alu_ri("add", 2, 400)
        assert len(long) == 6
        assert decode(short).uops[0].imm == 7
        assert decode(long).uops[0].imm == 400

    def test_negative_immediates(self):
        instr = decode(x86.encode_alu_ri("sub", 1, -4))
        assert instr.uops[0].imm == -4

    def test_big_unsigned_immediate_wraps(self):
        raw = x86.encode_mov_ri(0, 4023233417)
        instr = decode(raw)
        assert instr.uops[0].imm & 0xFFFFFFFF == 4023233417

    def test_mov_rr(self):
        instr = decode(x86.encode_mov_rr(4, 9))
        assert instr.mnemonic == "mov"
        assert instr.uops[0].rs1 == 9

    def test_cmp_forms(self):
        rr = decode(x86.encode_cmp_rr(1, 2))
        assert rr.uops[0].op == "cmp"
        ri = decode(x86.encode_cmp_ri(1, 1000))
        assert ri.uops[0].imm == 1000

    def test_load_store_disp_widths(self):
        for disp, length in ((8, 3), (1000, 6), (-12, 3)):
            load = decode(x86.encode_mem("load", 1, 2, disp))
            assert load.length == length
            assert load.uops[0].imm == disp
            store = decode(x86.encode_mem("store", 1, 2, disp))
            assert store.uops[0].imm == disp

    def test_byte_memory_ops(self):
        load8 = decode(x86.encode_mem("load8", 1, 2, 4))
        assert load8.uops[0].size == 1
        store8 = decode(x86.encode_mem("store8", 1, 2, 4))
        assert store8.uops[0].size == 1

    def test_load_op_cracks_into_two_uops(self):
        instr = decode(x86.encode_alu_m("add", 3, 14, -8))
        assert len(instr.uops) == 2
        assert instr.uops[0].kind == "load"
        assert instr.uops[0].rd == REG_T0
        assert instr.uops[1].kind == "alu"
        assert instr.uops[1].rs2 == REG_T0

    def test_branches_relative(self):
        pc = 0x1000
        raw = x86.encode_branch("jeq", 0x20, short=False)
        instr = decode(raw, pc)
        assert instr.is_cond and instr.target == pc + 5 + 0x20
        raw8 = x86.encode_branch("jne", -2, short=True)
        instr8 = decode(raw8, pc)
        assert instr8.length == 2 and instr8.target == pc

    def test_call_cracks_with_stack_push(self):
        instr = decode(x86.encode_branch("call", 0x10, short=False), 0x1000)
        kinds = [u.kind for u in instr.uops]
        assert kinds == ["alu", "alu", "store", "jmp"]
        assert instr.is_call and instr.target == 0x1000 + 5 + 0x10

    def test_ret_cracks_with_stack_pop(self):
        instr = decode(x86.encode_simple("ret"))
        kinds = [u.kind for u in instr.uops]
        assert kinds == ["load", "alu", "ijmp"]
        assert instr.is_ret and instr.is_indirect

    def test_push_pop(self):
        push = decode(x86.encode_simple("push", 5))
        assert [u.kind for u in push.uops] == ["alu", "store"]
        pop = decode(x86.encode_simple("pop", 5))
        assert [u.kind for u in pop.uops] == ["load", "alu"]

    def test_syscall_and_nop(self):
        assert decode(x86.encode_simple("syscall")).uops[0].kind == "sys"
        assert decode(x86.encode_simple("nop")).uops[0].kind == "nop"


class TestDecodeRobustness:
    def test_undefined_opcode(self):
        instr = decode(bytes([0xFF, 0, 0, 0, 0, 0]))
        assert instr.mnemonic == "<ud>"
        assert instr.length == 1
        assert instr.uops == []

    def test_reserved_modrm_bits_flagged(self):
        # push with non-zero high nibble decodes but is quirky.
        raw = bytes([0x59, 0xF5])
        instr = decode(raw)
        assert instr.mnemonic.endswith("!")
        assert instr.uops  # still decodable

    @given(st.binary(min_size=6, max_size=6),
           st.integers(min_value=0, max_value=0xFFFF))
    def test_decode_never_raises(self, raw, pc_off):
        instr = x86.decode_window(raw, 0x1000 + pc_off)
        assert 1 <= instr.length <= x86.MAX_ILEN

    @given(st.binary(min_size=6, max_size=6))
    def test_decode_deterministic(self, raw):
        a = x86.decode_window(raw, 0x1000)
        b = x86.decode_window(raw, 0x1000)
        assert a.mnemonic == b.mnemonic and a.length == b.length

    def test_opcode_space_has_holes(self):
        """Undefined opcodes must exist for realistic L1I fault effects."""
        undefined = sum(
            1 for op in range(256)
            if decode(bytes([op, 0, 0, 0, 0, 0])).mnemonic == "<ud>")
        assert undefined > 150  # most of the space is undefined
