"""Unit tests for predictor, BTB, RAS, TLB and prefetcher models."""

import pytest

from repro.sim.memory import PAGE_SIZE
from repro.uarch.btb import BTB
from repro.uarch.predictor import TournamentPredictor
from repro.uarch.prefetcher import StridePrefetcher
from repro.uarch.ras import RAS
from repro.uarch.tlb import TLB


class TestPredictor:
    def test_learns_always_taken(self):
        p = TournamentPredictor(64, 256, scheme="pc")
        pc = 0x1040
        for _ in range(8):
            p.update(pc, True)
        assert p.predict(pc) is True

    def test_learns_never_taken(self):
        p = TournamentPredictor(64, 256, scheme="history")
        pc = 0x1040
        for _ in range(8):
            p.update(pc, False)
        assert p.predict(pc) is False

    def test_schemes_validate(self):
        with pytest.raises(ValueError):
            TournamentPredictor(scheme="magic")

    def test_indexing_schemes_differ(self):
        """The Remark 6 mechanism: same history, different indexing."""
        pc_p = TournamentPredictor(16, 64, scheme="pc")
        hist_p = TournamentPredictor(16, 64, scheme="history")
        # Train an alternating pattern on two aliasing branches.
        import itertools
        outcomes = [True, True, False, True, False, False, True, False]
        for pred in (pc_p, hist_p):
            for pc, taken in zip(itertools.cycle([0x1000, 0x2000]),
                                 outcomes * 8):
                pred.update(pc, taken)
        # Not asserting specific outputs — only that the index functions
        # use different inputs: PC-indexed distinguishes branch addresses,
        # history-indexed (gem5, Remark 6) ignores them entirely.
        assert pc_p._indices(0x1002)[1:] != pc_p._indices(0x2004)[1:]
        # The local side is PC-indexed in both; gem5's global/chooser
        # sides ignore the branch address completely.
        assert hist_p._indices(0x1002)[1:] == hist_p._indices(0x2004)[1:]

    def test_ghr_shifts(self):
        p = TournamentPredictor(16, 64, scheme="history")
        p.update(0x1000, True)
        p.update(0x1000, False)
        assert p.ghr & 0b11 == 0b10


class TestBTB:
    def test_miss_then_hit(self):
        btb = BTB("b", 64, 4)
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_update_overwrites_same_pc(self):
        btb = BTB("b", 64, 4)
        btb.update(0x1000, 0x2000)
        btb.update(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_direct_mapped_conflict(self):
        btb = BTB("b", 16, 1)
        a, b = 0x1000, 0x1000 + 16 * 2  # same set (pc >> 1 % 16)
        btb.update(a, 0x1111)
        btb.update(b, 0x2222)
        assert btb.lookup(a) is None  # evicted by b
        assert btb.lookup(b) == 0x2222

    def test_target_fault_changes_prediction(self):
        btb = BTB("b", 64, 4)
        btb.update(0x1000, 0x2000)
        # Find the entry and flip a target bit.
        for i in range(btb.array.entries):
            if btb.array.peek(i):
                btb.array.flip(i, 4)
                break
        assert btb.lookup(0x1000) == 0x2000 ^ 0x10

    def test_site_liveness(self):
        btb = BTB("b", 16, 1)
        site = btb.site()
        assert not site.live(0)
        btb.update(0x1000, 0x2000)
        assert any(site.live(i) for i in range(16))


class TestRAS:
    def test_push_pop_lifo(self):
        ras = RAS(entries=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100
        assert ras.pop() is None

    def test_wraparound_overwrites_oldest(self):
        ras = RAS(entries=2)
        for addr in (0x100, 0x200, 0x300):
            ras.push(addr)
        assert ras.pop() == 0x300
        assert ras.pop() == 0x200
        assert ras.pop() is None  # 0x100 was overwritten (depth capped)

    def test_site_liveness_tracks_depth(self):
        ras = RAS(entries=4)
        site = ras.site()
        assert not any(site.live(i) for i in range(4))
        ras.push(0xAA)
        assert sum(site.live(i) for i in range(4)) == 1

    def test_fault_redirects_return(self):
        ras = RAS(entries=4)
        ras.push(0x1000)
        ras.array.flip(ras.top, 3)
        assert ras.pop() == 0x1008


class TestTLB:
    def test_miss_insert_hit(self):
        tlb = TLB("t", 8)
        assert tlb.translate(0x5123) is None
        tlb.insert(0x5123, 0x5123)
        assert tlb.translate(0x5FFF) == 0x5FFF  # same page
        assert tlb.translate(0x6000) is None

    def test_non_identity_translation(self):
        tlb = TLB("t", 8)
        tlb.insert(0x5000, 0x9000)
        assert tlb.translate(0x5010) == 0x9010

    def test_fifo_replacement(self):
        tlb = TLB("t", 2)
        for page in range(3):
            addr = (page + 1) * PAGE_SIZE
            tlb.insert(addr, addr)
        assert tlb.translate(1 * PAGE_SIZE) is None  # oldest evicted
        assert tlb.translate(3 * PAGE_SIZE) is not None

    def test_fault_in_frame_bits_mistranslates(self):
        tlb = TLB("t", 8)
        tlb.insert(0x5000, 0x5000)
        tlb.array.flip(0, 0)  # frame bit 0 → pfn 5 becomes 4
        got = tlb.translate(0x5000)
        assert got is not None and got != 0x5000

    def test_fault_in_valid_bit_drops_entry(self):
        tlb = TLB("t", 8)
        tlb.insert(0x5000, 0x5000)
        tlb.array.flip(0, 40)  # the valid bit (20 + 20)
        assert tlb.translate(0x5000) is None

    def test_lut_consistent_with_slow_path(self):
        tlb = TLB("t", 4)
        for page in (1, 2, 3, 4, 5):
            tlb.insert(page * PAGE_SIZE, page * PAGE_SIZE)
        # Force the slow path with a no-op stuck fault elsewhere.
        tlb.array.set_stuck(0, 0, 0, start=10 ** 9)
        slow = [tlb.translate(p * PAGE_SIZE) for p in range(1, 6)]
        tlb.array.clear_faults()
        fast = [tlb.translate(p * PAGE_SIZE) for p in range(1, 6)]
        assert slow == fast


class TestPrefetcher:
    def test_detects_constant_stride(self):
        pref = StridePrefetcher("p", entries=8)
        key = 42
        targets = [pref.train(key, 0x1000 + i * 64) for i in range(6)]
        assert targets[0] is None and targets[1] is None
        assert any(t is not None for t in targets)
        last = [t for t in targets if t is not None][-1]
        assert (last - 0x1000) % 64 == 0

    def test_random_pattern_never_confident(self):
        pref = StridePrefetcher("p", entries=8)
        addrs = [0x1000, 0x5040, 0x1080, 0x9000, 0x2040]
        assert all(pref.train(7, a) is None for a in addrs)

    def test_different_keys_independent(self):
        pref = StridePrefetcher("p", entries=8)
        for i in range(5):
            pref.train(1, 0x1000 + i * 64)
        assert pref.train(2, 0x9000) is None

    def test_site_liveness(self):
        pref = StridePrefetcher("p", entries=4)
        site = pref.site()
        assert not any(site.live(i) for i in range(4))
        pref.train(0, 0x1000)
        assert any(site.live(i) for i in range(4))

    def test_corrupted_stride_prefetches_wrong_line(self):
        pref = StridePrefetcher("p", entries=8)
        for i in range(5):
            pref.train(3, 0x1000 + i * 64)
        idx = 3 % 8
        pref.array.flip(idx, pref._stride_shift + 4)  # corrupt stride
        target = pref.train(3, 0x1000 + 5 * 64)
        # Either confidence collapsed (None) or the target moved.
        assert target is None or target != 0x1000 + 6 * 64
