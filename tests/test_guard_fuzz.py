"""Fuzz-style survival test: random faults everywhere, zero escapes.

The robustness contract in one test: flip random bits at random cycles
across *every* injectable structure of both setup families, and assert
that each run yields a classifiable record — no unhandled exception,
no hang, no campaign abort.  Seeded, so a failure reproduces exactly.
"""

import random

import pytest

from repro.core.dispatcher import InjectorDispatcher
from repro.core.fault import FaultMask, FaultSet
from repro.core.maskgen import StructureInfo
from repro.core.outcome import CLASSES
from repro.core.parser import classify_all
from repro.sim.config import setup_config

from tests.helpers import tiny_program

RUNS_PER_SETUP = 100      # ~200 total across the two setup families


@pytest.mark.parametrize("setup", ["MaFIN-x86", "GeFIN-x86"])
def test_fuzz_every_structure_survives_and_classifies(setup):
    config = setup_config(setup)
    d = InjectorDispatcher(config, tiny_program(config.isa),
                           guard="strict", timeout_s=30.0)
    golden = d.run_golden()
    sites = d.fault_sites()
    structures = sorted(sites)
    infos = {name: StructureInfo.of_site(site)
             for name, site in sites.items()}

    rng = random.Random(0xFA0175 + hash(setup) % 1000)
    records = []
    hit = set()
    for i in range(RUNS_PER_SETUP):
        st = structures[i % len(structures)]   # round-robin: cover all
        info = infos[st]
        mask = FaultMask(structure=st,
                         entry=rng.randrange(info.entries),
                         bit=rng.randrange(info.bits_per_entry),
                         cycle=rng.randrange(1, golden.cycles))
        record = d.inject(FaultSet(masks=(mask,), set_id=i),
                          early_stop=bool(i % 2))
        assert record.reason, f"run {i} ({st}) produced no reason"
        records.append(record)
        hit.add(st)

    assert hit == set(structures), "fuzz never reached some structures"
    counts = classify_all(records, golden)
    assert sum(counts.values()) == RUNS_PER_SETUP
    assert set(counts) <= set(CLASSES)
