"""Campaign-level telemetry: event order, metric parity, determinism."""

import json

import pytest

from repro.core.campaign import run_campaign
from repro.core.parallel import run_campaign_parallel
from repro.core.repository import LogsRepository
from repro.obs import (CampaignTelemetry, MetricsRegistry, RingBufferSink,
                       Tracer)
from repro.obs.summarize import (load_events, render_report,
                                 summarize_events)

CELL = dict(setup="GeFIN-x86", benchmark="sha", structure="l1d")
N = 6
SEED = 21


@pytest.fixture(scope="module")
def instrumented():
    """One serial campaign observed by a ring buffer + registry."""
    sink = RingBufferSink()
    metrics = MetricsRegistry()
    result = run_campaign(**CELL, injections=N, seed=SEED,
                          tracer=Tracer(sink), metrics=metrics)
    return result, sink, metrics


@pytest.fixture(scope="module")
def baseline():
    """The same campaign with the default null sink."""
    return run_campaign(**CELL, injections=N, seed=SEED)


class TestEventStream:
    def test_documented_event_order(self, instrumented):
        _, sink, _ = instrumented
        names = sink.names()
        # Phases appear in order: golden, maskgen, campaign, injections.
        for a, b in [("golden_start", "golden_end"),
                     ("golden_end", "maskgen_start"),
                     ("maskgen_start", "maskgen_end"),
                     ("maskgen_end", "campaign_start"),
                     ("campaign_start", "inject_start"),
                     ("inject_start", "inject_end"),
                     ("inject_end", "campaign_end")]:
            assert names.index(a) < names.index(b), (a, b, names)
        # Checkpoints are taken during the golden run only.
        golden_span = names[:names.index("golden_end")]
        assert "checkpoint_taken" in golden_span
        # Every injection is bracketed by start/end, in mask order.
        assert names.count("inject_start") == N
        assert names.count("inject_end") == N
        starts = [e.fields["set_id"] for e in sink.events
                  if e.name == "inject_start"]
        assert starts == list(range(N))

    def test_inject_events_carry_profile_fields(self, instrumented):
        _, sink, _ = instrumented
        ends = [e for e in sink.events if e.name == "inject_end"]
        for ev in ends:
            assert ev.fields["reason"]
            assert ev.fields["sim_cycles"] >= 0
            assert ev.fields["saved_cycles"] >= 0
            assert ev.fields["wall_s"] > 0
        # Early-stop events precede their inject_end and match records.
        stops = [e for e in sink.events if e.name == "early_stop"]
        result = instrumented[0]
        assert len(stops) == result.early_stops

    def test_classify_emits_event(self, instrumented):
        result, sink, _ = instrumented
        counts = result.classify()
        ev = [e for e in sink.events if e.name == "classify"][-1]
        assert ev.fields["Masked"] == counts["Masked"]
        assert ev.fields["wall_s"] >= 0


class TestZeroImpact:
    def test_null_sink_classification_identical(self, instrumented,
                                                baseline):
        result, _, _ = instrumented
        assert result.classify() == baseline.classify()

    def test_records_byte_identical(self, instrumented, baseline):
        result, _, _ = instrumented
        a = json.dumps([r.to_dict() for r in result.records])
        b = json.dumps([r.to_dict() for r in baseline.records])
        assert a == b

    def test_baseline_still_carries_telemetry(self, baseline):
        # The null sink disables tracing, not the metrics summary.
        t = baseline.telemetry
        assert t is not None and t.injections == N
        assert t.golden_s > 0 and t.inject_s > 0


class TestTelemetrySummary:
    def test_summary_fields(self, instrumented):
        result, _, _ = instrumented
        t = result.telemetry
        assert t.injections == N
        assert t.injections_per_sec > 0
        assert 0.0 <= t.checkpoint_speedup <= 1.0
        assert t.checkpoint_restores + t.cold_starts == N
        assert sum(t.outcomes.values()) == N
        assert t.early_stop_rate == result.early_stops / N
        assert t.golden_cycles == result.golden.cycles
        text = t.summary()
        assert "injections/sec" in text and "checkpoint speedup" in text

    def test_round_trip_and_merge(self, instrumented):
        t = instrumented[0].telemetry
        clone = CampaignTelemetry.from_dict(
            json.loads(json.dumps(t.to_dict())))
        assert clone.to_dict() == t.to_dict()
        merged = CampaignTelemetry().merge(t).merge(t)
        assert merged.injections == 2 * N
        assert merged.cycles_saved == 2 * t.cycles_saved
        assert merged.outcomes["exit"] == 2 * t.outcomes["exit"]


class TestParallelParity:
    def test_worker_metrics_merge_equals_serial(self, instrumented):
        _, _, serial_metrics = instrumented
        par_metrics = MetricsRegistry()
        par = run_campaign_parallel(**CELL, injections=N, seed=SEED,
                                    workers=2, metrics=par_metrics)
        assert par.injections == N
        s, p = serial_metrics.to_dict(), par_metrics.to_dict()
        # Deterministic metrics are exactly equal; wall times are not.
        assert s["counters"] == p["counters"]
        assert s["gauges"] == p["gauges"]
        assert par.telemetry.cycles_saved == \
            instrumented[0].telemetry.cycles_saved

    def test_parallel_fault_type_threaded(self):
        par = run_campaign_parallel(**CELL, injections=3, seed=5,
                                    workers=2, fault_type="permanent")
        for record in par.records:
            assert all(m["fault_type"] == "permanent"
                       for m in record.masks)

    def test_parallel_progress_callback(self):
        calls = []
        run_campaign_parallel(**CELL, injections=4, seed=7, workers=2,
                              progress=lambda i, n, rec:
                              calls.append((i, n, rec.set_id)))
        assert [c[:2] for c in calls] == [(1, 4), (2, 4), (3, 4), (4, 4)]
        assert [c[2] for c in calls] == [0, 1, 2, 3]  # mask order

    def test_parallel_logs_path(self, tmp_path):
        path = tmp_path / "logs.jsonl"
        par = run_campaign_parallel(**CELL, injections=4, seed=9,
                                    workers=2, logs_path=path)
        logs = LogsRepository(path)
        assert logs.golden is not None
        assert logs.golden.cycles == par.golden.cycles
        assert len(logs) == 4
        assert [r.set_id for r in logs.records] == [0, 1, 2, 3]


class TestSummarize:
    def test_events_file_summary_matches_telemetry(self, tmp_path):
        path = tmp_path / "events.jsonl"
        result = run_campaign(**CELL, injections=N, seed=SEED,
                              events_path=path)
        summary = summarize_events(load_events(path))
        t = result.telemetry
        assert summary["injections"] == N
        assert summary["outcomes"] == t.outcomes
        assert summary["early_stops"] == t.early_stops
        assert summary["early_stop_rate"] == pytest.approx(
            t.early_stop_rate)
        cp = summary["checkpoint"]
        assert cp["cycles_saved"] == t.cycles_saved
        assert cp["cycles_simulated"] == t.cycles_simulated
        assert cp["speedup_fraction"] == pytest.approx(
            t.checkpoint_speedup)
        assert summary["phases"]["golden_s"] == pytest.approx(t.golden_s)
        assert summary["campaigns"][0]["benchmark"] == "sha"

    def test_render_report_contents(self, tmp_path):
        path = tmp_path / "events.jsonl"
        run_campaign(**CELL, injections=4, seed=3, events_path=path)
        report = render_report(summarize_events(load_events(path)))
        for needle in ("campaign telemetry report", "phase timing",
                       "golden", "inject", "injections",
                       "checkpointing", "early stops"):
            assert needle in report

    def test_load_events_rejects_mid_file_garbage(self, tmp_path):
        # Corruption with complete lines after it is real corruption...
        bad = tmp_path / "bad.jsonl"
        bad.write_text('not json\n{"name": "classify", "ts": 2.0}\n')
        with pytest.raises(ValueError):
            load_events(bad)
        unnamed = tmp_path / "unnamed.jsonl"
        unnamed.write_text('{"ts": 1.0}\n{"name": "classify", "ts": 2.0}\n')
        with pytest.raises(ValueError):
            load_events(unnamed)

    def test_load_events_drops_torn_trailing_line(self, tmp_path):
        # ...but a bad *final* line is the write a killed campaign
        # never finished: dropped with a warning, not an error.
        torn = tmp_path / "torn.jsonl"
        torn.write_text('{"name": "campaign_start", "ts": 1.0}\n'
                        '{"name": "campaign_end", "ts": 2.0, "wal')
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            events = load_events(torn)
        assert [e["name"] for e in events] == ["campaign_start"]
