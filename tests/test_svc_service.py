"""The campaign service: admission, fairness, durability, HTTP.

Like the scheduler tests these run real (tiny) studies through worker
processes — the service-level guarantees under test (kill-and-restart
losslessness, cross-study golden caching, cancel) only mean something
against the real fleet.  Dispatch-order tests use the chaos hook so
no simulation runs at all.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.campaign import run_campaign
from repro.sched import DONE, CampaignPlan, StudySpec, load_journal
from repro.svc import (CANCELLED, STUDY_DONE, CampaignService,
                       QuotaExceeded, ServiceJournal, ServiceServer,
                       TenantPolicy, load_service, study_id_for)

SETUP = "MaFIN-x86"


def spec(**over):
    base = dict(setups=(SETUP,), benchmarks=("sha",),
                structures=("int_rf",), fault_types=("transient",),
                injections=2, seed=7)
    base.update(over)
    return StudySpec(**base)


def spec_dict(**over):
    """The same study as an untrusted wire-format dict."""
    base = dict(setups=[SETUP], benchmarks=["sha"],
                structures=["int_rf"], fault_types=["transient"],
                injections=2, seed=7)
    base.update(over)
    return base


def direct_counts(sp):
    """Ground truth for a spec: each unit run straight through core."""
    totals = {}
    for unit in CampaignPlan.from_spec(sp):
        counts = run_campaign(unit.setup, unit.benchmark, unit.structure,
                              injections=sp.injections,
                              seed=unit.seed(sp.seed)).classify()
        for cls, n in counts.items():
            totals[cls] = totals.get(cls, 0) + n
    return totals


def done_records(journal_path):
    """unit_id -> number of DONE journal records (losslessness probe)."""
    out = {}
    for line in journal_path.read_text().strip().splitlines():
        row = json.loads(line)
        if row.get("state") == DONE:
            out[row["unit"]] = out.get(row["unit"], 0) + 1
    return out


class TestServiceJournal:
    """The study ledger replays exactly, torn tail and all."""

    def test_replay_roundtrip(self, tmp_path):
        path = tmp_path / "service.jsonl"
        with ServiceJournal(path, fsync=False) as j:
            j.record_submit("s0001-abc123", "alice", {"seed": 7},
                            "abc123", ["u1", "u2"])
            j.record_submit("s0002-def456", "bob", {"seed": 8},
                            "def456", ["u1"])
            j.record_state("s0001-abc123", "running")
            j.record_state("s0001-abc123", "done")
        state = load_service(path)
        assert list(state.studies) == ["s0001-abc123", "s0002-def456"]
        assert state.studies["s0001-abc123"].state == STUDY_DONE
        assert state.studies["s0001-abc123"].terminal
        assert state.studies["s0002-def456"].state == "accepted"
        assert [r.study_id for r in state.active()] == ["s0002-def456"]
        assert state.tally()["done"] == 1
        assert state.next_serial() == 3

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "service.jsonl"
        with ServiceJournal(path, fsync=False) as j:
            j.record_submit("s0001-abc123", "alice", {}, "abc123", ["u1"])
        with open(path, "a") as fh:
            fh.write('{"kind": "state", "id": "s0001-ab')   # the crash
        state = load_service(path)
        assert state.studies["s0001-abc123"].state == "accepted"

    def test_state_for_unknown_study_ignored(self, tmp_path):
        path = tmp_path / "service.jsonl"
        with ServiceJournal(path, fsync=False) as j:
            j.record_state("s9999-nobody", "done")
        assert load_service(path).studies == {}

    def test_missing_journal_is_empty_state(self, tmp_path):
        assert load_service(tmp_path / "absent.jsonl").studies == {}

    def test_study_id_shape(self):
        assert study_id_for(3, "deadbeef99") == "s0003-deadbe"


class TestServiceLifecycle:
    def test_two_tenants_to_completion_match_direct(self, tmp_path):
        sp_a, sp_b = spec(), spec(structures=("l1d",))
        with CampaignService(tmp_path, workers=2, fsync=False) as svc:
            sid_a = svc.submit(sp_a, tenant="alice")
            sid_b = svc.submit(spec_dict(structures=["l1d"]), tenant="bob")
            svc.run_until_idle(timeout_s=120)
            for sid, sp in ((sid_a, sp_a), (sid_b, sp_b)):
                row = svc.study_status(sid)
                assert row["state"] == STUDY_DONE
                assert row["tally"] == {"units": 1, "done": 1,
                                        "quarantined": 0, "pending": 0}
                # The service-run study equals a direct core campaign.
                assert row["totals"] == direct_counts(sp)
            assert svc.metrics.counter_value("svc.studies_submitted") == 2
            assert svc.metrics.counter_value("svc.studies_done") == 2
            assert svc.idle
        # Both layers of durable state agree after close.
        state = load_service(tmp_path / "service.jsonl")
        assert state.tally()["done"] == 2
        for sid in (sid_a, sid_b):
            journal = tmp_path / "studies" / sid / "journal.jsonl"
            assert all(n == 1 for n in done_records(journal).values())

    def test_service_events_feed_the_report(self, tmp_path):
        from pathlib import Path

        from repro.obs.summarize import load_events, summarize_events
        with CampaignService(tmp_path, workers=1, fsync=False) as svc:
            svc.submit(spec(), tenant="alice")
            svc.run_until_idle(timeout_s=120)
        summary = summarize_events(
            load_events(Path(tmp_path) / "service-events.jsonl"))
        assert summary["svc"]["submitted"] == 1
        assert summary["svc"]["done"] == 1
        # The tenant histogram counts submissions, not lifecycle events.
        assert summary["svc"]["tenants"] == {"alice": 1}

    def test_submit_rejects_bad_specs(self, tmp_path):
        with CampaignService(tmp_path, workers=1, fsync=False) as svc:
            with pytest.raises(ValueError, match="unknown .*field"):
                svc.submit(spec_dict(nope=1))
            with pytest.raises(ValueError, match="bare string"):
                svc.submit(spec_dict(setups=SETUP))
            assert svc.studies() == []

    def test_unknown_study_raises_keyerror(self, tmp_path):
        with CampaignService(tmp_path, workers=1, fsync=False) as svc:
            with pytest.raises(KeyError):
                svc.study_status("s9999-nobody")
            with pytest.raises(KeyError):
                svc.cancel("s9999-nobody")


class TestQuota:
    def test_tenant_at_quota_rejected_while_other_proceeds(self, tmp_path):
        policies = {"capped": TenantPolicy(max_queued=1)}
        with CampaignService(tmp_path, workers=2, fsync=False,
                             policies=policies) as svc:
            # Two units > max_queued=1: refused atomically.
            with pytest.raises(QuotaExceeded) as err:
                svc.submit(spec(structures=("int_rf", "l1d")),
                           tenant="capped")
            assert err.value.reason == "queued"
            assert svc.studies() == []           # nothing half-admitted
            sid = svc.submit(spec(), tenant="free")
            svc.run_until_idle(timeout_s=120)
            assert svc.study_status(sid)["state"] == STUDY_DONE
            assert svc.metrics.counter_value("svc.quota_rejections") == 1
        events = (tmp_path / "service-events.jsonl").read_text()
        rejected = [json.loads(line) for line in events.splitlines()
                    if '"quota_rejected"' in line]
        assert rejected and rejected[0]["reason"] == "queued"

    def test_rate_limit_names_the_knob(self, tmp_path):
        policies = {"t": TenantPolicy(rate=0.001, burst=1)}
        with CampaignService(tmp_path, workers=1, fsync=False,
                             policies=policies) as svc:
            svc.submit(spec(), tenant="t", now=0.0)
            with pytest.raises(QuotaExceeded) as err:
                svc.submit(spec(seed=8), tenant="t", now=0.1)
            assert err.value.reason == "rate"


class TestKillRestart:
    """Satellite check: kill-and-restart losslessness."""

    def test_restart_resumes_without_rerun_or_loss(self, tmp_path):
        sp = spec(structures=("int_rf", "l1d", "l1i"))
        svc1 = CampaignService(tmp_path, workers=2, fsync=False)
        sid = svc1.submit(sp, tenant="alice")
        run = svc1.runs[sid]
        # Drive ticks only until the first unit lands, then pull the
        # plug with work still queued and in flight.
        deadline = time.monotonic() + 120
        while run.done_count() < 1:
            svc1.tick()
            assert time.monotonic() < deadline, "no unit ever finished"
            time.sleep(0.01)
        done_before = {uid for uid, c in run.cells.items()
                       if c.state == DONE}
        svc1.close()                       # SIGKILL-equivalent shutdown

        svc2 = CampaignService(tmp_path, workers=2, fsync=False)
        rec = svc2.state.studies[sid]
        assert not rec.terminal            # still mid-flight on disk
        svc2.run_until_idle(timeout_s=120)
        assert svc2.study_status(sid)["state"] == STUDY_DONE
        assert svc2.study_status(sid)["totals"] == direct_counts(sp)
        journal = tmp_path / "studies" / sid / "journal.jsonl"
        per_unit = done_records(journal)
        # No unit lost, no unit completed twice.
        assert set(per_unit) == {u.unit_id for u in
                                 CampaignPlan.from_spec(sp)}
        assert all(n == 1 for n in per_unit.values())
        # Units finished before the kill were restored, not re-leased.
        state = load_journal(journal)
        for uid in done_before:
            assert state.attempts[uid] == 1
        svc2.close()

        # A third service over the same root has nothing to do.
        lines_before = journal.read_text().count("\n")
        with CampaignService(tmp_path, workers=2, fsync=False) as svc3:
            assert svc3.idle
            assert svc3.state.studies[sid].state == STUDY_DONE
        assert journal.read_text().count("\n") == lines_before


class TestCancel:
    def test_cancel_drops_queued_and_survives_restart(self, tmp_path):
        sp = spec(structures=("int_rf", "l1d"))
        with CampaignService(tmp_path, workers=1, fsync=False) as svc:
            sid = svc.submit(sp, tenant="alice")
            out = svc.cancel(sid)          # before any tick: all queued
            assert out == {"id": sid, "dropped": 2, "killed": 0}
            assert svc.study_status(sid)["state"] == CANCELLED
            assert svc.idle
            with pytest.raises(ValueError, match="already cancelled"):
                svc.cancel(sid)
        with CampaignService(tmp_path, workers=1, fsync=False) as svc2:
            assert svc2.state.studies[sid].state == CANCELLED
            assert svc2.idle               # cancelled units not re-queued


class TestGoldenCache:
    def test_second_study_reuses_golden_payload(self, tmp_path):
        with CampaignService(tmp_path, workers=1, fsync=False) as svc:
            svc.submit(spec(), tenant="alice")
            svc.submit(spec(structures=("l1d",)), tenant="bob")
            svc.run_until_idle(timeout_s=120)
            # Same (setup, benchmark): the second unit's golden run is
            # served from the cross-study cache.
            assert svc.fleet.cache.hits == 1
            assert svc.fleet.cache.misses == 1
            # ... and once no live study references the blob any more,
            # it is evicted rather than held forever.
            assert len(svc.fleet.cache) == 0
            assert svc.metrics.counter_value("svc.blobs.evicted") >= 1


class TestFairDispatch:
    def test_service_interleaves_tenants_by_weight(self, tmp_path,
                                                   monkeypatch):
        # Chaos-fail every unit on attempt 1 with max_retries=0: no
        # simulation runs, units quarantine instantly, and the launch
        # order is purely the fair queue's DRR decision.
        sp = spec(structures=("int_rf", "l1d", "l1i", "dtlb"))
        chaos = ";".join(f"{u.unit_id}=fail:99"
                         for u in CampaignPlan.from_spec(sp))
        monkeypatch.setenv("REPRO_SCHED_CHAOS", chaos)
        policies = {"a": TenantPolicy(weight=1.0),
                    "b": TenantPolicy(weight=3.0)}
        with CampaignService(tmp_path, workers=1, fsync=False,
                             policies=policies, max_retries=0) as svc:
            order = []
            launch = svc.fleet.launch
            monkeypatch.setattr(
                svc.fleet, "launch",
                lambda run, unit: (order.append(run.tenant),
                                   launch(run, unit))[1])
            svc.submit(sp, tenant="a")
            svc.submit(sp, tenant="b")
            svc.run_until_idle(timeout_s=120)
            assert len(order) == 8
            # While both tenants had queued work (the first four
            # launches), weight 3 bought b three of every four slots —
            # and a was never shut out.
            first = order[:4]
            assert first.count("b") == 3 and first.count("a") == 1
            for sid in list(svc.state.studies):
                tally = svc.study_status(sid)["tally"]
                assert tally["quarantined"] == 4   # chaos, as planned


def _get(url, timeout=30.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode()


def _post(url, payload=None, headers=None, timeout=30.0):
    data = json.dumps(payload).encode() if payload is not None else b""
    req = urllib.request.Request(url, data=data, method="POST",
                                 headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode())


@pytest.fixture(scope="class")
def served(tmp_path_factory):
    """One live service over HTTP, shared by the endpoint tests."""
    root = tmp_path_factory.mktemp("svc")
    service = CampaignService(
        root, workers=2, fsync=False,
        policies={"capped": TenantPolicy(max_queued=0)})
    server = ServiceServer(service, port=0)
    ready = threading.Event()
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"on_ready": lambda s: ready.set()}, daemon=True)
    thread.start()
    assert ready.wait(10.0), "service never bound"
    yield f"http://127.0.0.1:{server.port}", service
    server.stop()
    thread.join(10.0)
    service.close()


class TestHttpApi:
    def _wait_done(self, base, sid, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, body = _get(f"{base}/studies/{sid}/status")
            row = json.loads(body)
            if row["state"] in ("done", "cancelled"):
                return row
            time.sleep(0.1)
        pytest.fail(f"study {sid} never finished")

    def test_submit_track_stream_report(self, served):
        base, _ = served
        code, out = _post(f"{base}/studies", spec_dict(),
                          headers={"X-Tenant": "alice"})
        assert code == 202
        sid = out["id"]
        assert out["tenant"] == "alice"
        assert out["status_url"] == f"/studies/{sid}/status"
        row = self._wait_done(base, sid)
        assert row["state"] == "done"
        assert row["tally"]["done"] == 1
        assert sum(row["totals"].values()) == 2     # injections=2

        # The lifecycle row shows up in the study list.
        _, body = _get(f"{base}/studies")
        assert sid in {r["id"] for r in json.loads(body)["studies"]}

        # /events streams NDJSON to a deterministic terminator.
        _, body = _get(f"{base}/studies/{sid}/events")
        lines = [json.loads(line) for line in body.strip().splitlines()]
        final = lines[-1]
        assert final["name"] == "study_complete"
        assert final["complete"] and final["state"] == "done"
        assert final["tally"]["done"] == 1
        # ?since replays only the suffix.
        _, partial = _get(
            f"{base}/studies/{sid}/events?since={len(lines) - 1}")
        assert len(partial.strip().splitlines()) == 1

        # The plain-text report renders from the study's events.
        code, text = _get(f"{base}/studies/{sid}/report")
        assert code == 200 and "sha" in text

        # Service-level snapshot.
        _, body = _get(f"{base}/status")
        status = json.loads(body)
        assert status["studies"]["done"] >= 1
        assert {"queue", "fleet", "golden_cache"} <= status.keys()

    def test_cancel_over_http(self, served):
        base, _ = served
        _, out = _post(f"{base}/studies",
                       {"tenant": "bob",
                        "spec": spec_dict(structures=["int_rf", "l1d"],
                                          seed=11)})
        sid = out["id"]
        code, out = _post(f"{base}/studies/{sid}/cancel")
        assert code == 200
        assert out["dropped"] + out["killed"] >= 1
        assert self._wait_done(base, sid)["state"] == "cancelled"
        code, out = _post(f"{base}/studies/{sid}/cancel")
        assert code == 409 and "already cancelled" in out["error"]
        # The events stream still terminates, flagged non-complete.
        _, body = _get(f"{base}/studies/{sid}/events")
        final = json.loads(body.strip().splitlines()[-1])
        assert final["name"] == "study_complete"
        assert final["state"] == "cancelled"

    def test_bad_spec_is_400_with_the_fix(self, served):
        base, _ = served
        code, out = _post(f"{base}/studies", spec_dict(nope=1))
        assert code == 400 and "nope" in out["error"]
        code, out = _post(f"{base}/studies", spec_dict(setups=SETUP))
        assert code == 400 and "bare string" in out["error"]
        code, out = _post(f"{base}/studies",
                          {"tenant": "", "spec": spec_dict()})
        assert code == 400 and "tenant" in out["error"]

    def test_quota_is_429_naming_the_knob(self, served):
        base, _ = served
        code, out = _post(f"{base}/studies", spec_dict(),
                          headers={"X-Tenant": "capped"})
        assert code == 429
        assert out["reason"] == "queued" and out["tenant"] == "capped"

    def test_unknown_study_is_404(self, served):
        base, _ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"{base}/studies/s9999-nobody/status")
        assert err.value.code == 404
