"""Integration test for the figure sweep driver."""

from repro.core.report import FigureResult, run_figure


def test_run_figure_subset():
    seen = []
    fig = run_figure("int_rf", benchmarks=("sha",),
                     setups=("MaFIN-x86", "GeFIN-x86"), injections=3,
                     seed=5, progress=lambda b, s, r: seen.append((b, s)))
    assert isinstance(fig, FigureResult)
    assert seen == [("sha", "MaFIN-x86"), ("sha", "GeFIN-x86")]
    assert set(fig.cells) == {("sha", "MaFIN-x86"), ("sha", "GeFIN-x86")}
    for cell in fig.cells.values():
        assert cell.injections == 3
    text = fig.render()
    assert "sha" in text and "AVG" in text
    rows = fig.summary_rows()
    cell_rows = [r for r in rows if r["benchmark"] == "sha"]
    assert all("error_margin_99" in r for r in cell_rows)
    # 3 injections buys a very wide margin — honesty check.
    assert all(r["error_margin_99"] > 50 for r in cell_rows)
