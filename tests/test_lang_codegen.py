"""Compiler correctness: compiled programs must match the interpreter.

The property-based tests generate random MiniC programs (expression
trees, loops, calls) and check that the x86 and ARM compiled binaries —
executed on the functional reference simulator — produce exactly the
interpreter's output stream and exit code.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang.compiler import compile_program, compile_source
from repro.lang.interp import interpret
from repro.sim.functional import run_program

ISAS = ("x86", "arm")


def check_both_isas(src: str):
    code, out = interpret(src)
    for isa in ISAS:
        res = run_program(compile_program(src, isa))
        assert res.reason == "exit", (isa, res.reason)
        assert res.exit_code == code, (isa, res.exit_code, code)
        assert res.output == out, (isa, res.output.hex(), out.hex())


class TestTargetedPrograms:
    def test_spilled_locals(self):
        # More locals than the ARM backend's 8 register homes.
        decls = "\n".join(f"var v{i} = {i * 3 + 1};" for i in range(14))
        uses = " + ".join(f"v{i}" for i in range(14))
        check_both_isas(f"func main() {{ {decls} out({uses}); }}")

    def test_deep_expression_stack(self):
        expr = "1"
        for i in range(2, 12):
            expr = f"({expr} * 2 + {i})"
        check_both_isas(f"func main() {{ out({expr}); }}")

    def test_call_inside_expression(self):
        src = """
        func sq(x) { return x * x; }
        func main() {
          var a = 3;
          out(a + sq(a + 1) * 2 - sq(sq(2)));
        }
        """
        check_both_isas(src)

    def test_spilled_local_read_at_depth(self):
        # Regression: sp-relative overflow locals must survive pushes.
        decls = "\n".join(f"var v{i} = {i + 1};" for i in range(12))
        src = f"""
        int a[4] = {{7, 8, 9, 10}};
        func main() {{
          {decls}
          var s = 0;
          var i;
          for (i = 0; i < 4; i = i + 1) {{
            s = s + a[i] * (v11 + i);
          }}
          out(s);
        }}
        """
        check_both_isas(src)

    def test_nested_calls_four_args(self):
        src = """
        func f(a, b, c, d) { return (a + b) * (c + d); }
        func main() { out(f(f(1,2,3,4), 5, f(6,7,8,9), 10)); }
        """
        check_both_isas(src)

    def test_recursion_fib(self):
        src = """
        func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        func main() { out(fib(12)); }
        """
        check_both_isas(src)

    def test_global_arrays_and_scalars(self):
        src = """
        int a[6] = {5, 4, 3, 2, 1};
        int total;
        func main() {
          var i;
          for (i = 0; i < 6; i = i + 1) { total = total + a[i] * i; }
          a[5] = total;
          out(a[5]);
          out(total % 7);
        }
        """
        check_both_isas(src)

    def test_boolean_materialization(self):
        src = """
        func main() {
          var x = 5;
          var flag = (x > 3) + (x == 5) * 2 + (x < 0);
          out(flag);
          out(x > 3 && x < 10 || x == 0);
        }
        """
        check_both_isas(src)

    def test_large_constants(self):
        src = """
        func main() {
          var big = 305419896;
          out(big ^ 2863311530);
          out(big + 4023233417);
        }
        """
        check_both_isas(src)

    def test_mod_synthesis_on_arm(self):
        src = """
        func main() {
          var i;
          for (i = 1; i < 20; i = i + 3) {
            out(i % 7);
            out((0 - i) % 5);
          }
        }
        """
        check_both_isas(src)

    def test_unary_operators(self):
        check_both_isas(
            "func main() { var x = 9; out(-x); out(~x); out(!x); }")

    def test_while_with_complex_condition(self):
        src = """
        func main() {
          var i = 0;
          var s = 0;
          while (i < 20 && (s < 50 || i % 2 == 0)) {
            s = s + i;
            i = i + 1;
          }
          out(i); out(s);
        }
        """
        check_both_isas(src)

    def test_out_inside_loop_and_call(self):
        src = """
        func emit(x) { out(x * 2); return x; }
        func main() {
          var i;
          for (i = 0; i < 3; i = i + 1) { emit(i + 10); }
        }
        """
        check_both_isas(src)


# ---------------------------------------------------------------------------
# Property-based program generation.

_VARS = ("a", "b", "c")


def _exprs(depth):
    if depth == 0:
        return st.one_of(
            st.integers(min_value=-120, max_value=120).map(
                lambda n: f"({n})" if n < 0 else str(n)),
            st.sampled_from(_VARS),
            st.sampled_from([f"arr[{i}]" for i in range(4)]),
        )
    sub = _exprs(depth - 1)
    safe_bin = st.tuples(st.sampled_from(
        ["+", "-", "*", "&", "|", "^"]), sub, sub).map(
        lambda t: f"({t[1]} {t[0]} {t[2]})")
    shift = st.tuples(st.sampled_from(["<<", ">>"]), sub,
                      st.integers(min_value=0, max_value=31)).map(
        lambda t: f"({t[1]} {t[0]} {t[2]})")
    division = st.tuples(st.sampled_from(["/", "%"]), sub, sub).map(
        lambda t: f"({t[1]} {t[0]} (({t[2]} & 15) + 1))")
    compare = st.tuples(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
                        sub, sub).map(lambda t: f"({t[1]} {t[0]} {t[2]})")
    unary = st.tuples(st.sampled_from(["-", "~", "!"]), sub).map(
        lambda t: f"({t[0]}{t[1]})")
    return st.one_of(safe_bin, shift, division, compare, unary, sub)


@st.composite
def _programs(draw):
    e1 = draw(_exprs(3))
    e2 = draw(_exprs(3))
    e3 = draw(_exprs(2))
    idx = draw(st.integers(min_value=0, max_value=3))
    init = [draw(st.integers(min_value=-50, max_value=50)) for _ in range(4)]
    a0 = draw(st.integers(min_value=-50, max_value=50))
    b0 = draw(st.integers(min_value=-50, max_value=50))
    return f"""
    int arr[4] = {{{", ".join(str(v) for v in init)}}};
    func main() {{
      var a = {a0};
      var b = {b0};
      var c = 7;
      a = {e1};
      b = {e2};
      arr[{idx}] = a ^ b;
      c = {e3};
      out(a); out(b); out(c); out(arr[{idx}]);
      return (a ^ b ^ c) & 255;
    }}
    """


class TestPropertyCompiledMatchesInterpreter:
    @settings(max_examples=30, deadline=None)
    @given(_programs())
    def test_random_programs(self, src):
        check_both_isas(src)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(min_value=-100, max_value=100),
                    min_size=4, max_size=10))
    def test_random_loop_reductions(self, values):
        arr = ", ".join(str(v) for v in values)
        src = f"""
        int data[{len(values)}] = {{{arr}}};
        func main() {{
          var i;
          var acc = 1;
          for (i = 0; i < {len(values)}; i = i + 1) {{
            acc = acc * 31 + data[i];
            if (acc % 2 == 0) {{ acc = acc + i; }}
          }}
          out(acc);
        }}
        """
        check_both_isas(src)


class TestAssemblyShape:
    def test_x86_uses_load_op_instructions(self):
        asm = compile_source(
            "func main() { var x = 1; var y = 2; out(x + y); }", "x86")
        assert "addm r0" in asm  # frame-slot load-op

    def test_arm_keeps_locals_in_registers(self):
        asm = compile_source(
            "func main() { var x = 1; var y = 2; out(x + y); }", "arm")
        assert "mov r4" in asm or "mov r0, r4" in asm

    def test_x86_has_frame_pointer_prologue(self):
        asm = compile_source("func f(n) { return n; } func main() { f(1); }",
                             "x86")
        assert "push r14" in asm and "mov r14, sp" in asm

    def test_arm_saves_lr(self):
        asm = compile_source("func f(n) { return n; } func main() { f(1); }",
                             "arm")
        assert "str lr, [sp+0]" in asm and "bx lr" in asm
