"""Unit and property tests for the injectable storage arrays."""

import pytest
from hypothesis import given, strategies as st

from repro.uarch.array import FaultSite, LineArray, StorageArray, WordArray


class TestWordArray:
    def test_read_write(self):
        arr = WordArray("t", 8, 32)
        arr.write(3, 0xDEADBEEF)
        assert arr.read(3) == 0xDEADBEEF

    def test_write_masks_to_width(self):
        arr = WordArray("t", 4, 8)
        arr.write(0, 0x1FF)
        assert arr.read(0) == 0xFF

    def test_transient_flip(self):
        arr = WordArray("t", 4, 32)
        arr.write(1, 0b1000)
        arr.flip(1, 3)
        assert arr.read(1) == 0
        arr.flip(1, 0)
        assert arr.read(1) == 1

    @given(st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_flip_twice_is_identity(self, entry, bit, value):
        arr = WordArray("t", 8, 32)
        arr.write(entry, value)
        arr.flip(entry, bit)
        arr.flip(entry, bit)
        assert arr.read(entry) == value

    def test_stuck_at_one_window(self):
        arr = WordArray("t", 4, 32)
        arr.write(0, 0)
        arr.set_stuck(0, 5, 1, start=10, end=20)
        assert arr.read(0, cycle=5) == 0
        assert arr.read(0, cycle=10) == 1 << 5
        assert arr.read(0, cycle=19) == 1 << 5
        assert arr.read(0, cycle=20) == 0

    def test_stuck_at_zero_permanent(self):
        arr = WordArray("t", 4, 32)
        arr.write(2, 0xFF)
        arr.set_stuck(2, 0, 0)
        assert arr.read(2, cycle=10 ** 9) == 0xFE

    def test_stuck_does_not_change_storage(self):
        arr = WordArray("t", 4, 32)
        arr.write(0, 0)
        arr.set_stuck(0, 1, 1, start=0, end=5)
        assert arr.read(0, cycle=1) == 2
        assert arr.peek(0) == 0  # underlying cell unchanged

    def test_stuck_idempotent(self):
        arr = WordArray("t", 4, 32)
        arr.set_stuck(0, 1, 1)
        arr.set_stuck(0, 1, 1)
        assert arr.read(0, 0) == 2

    def test_clear_faults(self):
        arr = WordArray("t", 4, 32)
        arr.set_stuck(0, 1, 1)
        arr.clear_faults()
        assert arr.read(0, 0) == 0

    def test_fault_epoch_bumps(self):
        arr = WordArray("t", 4, 32)
        e0 = arr.fault_epoch
        arr.flip(0, 0)
        assert arr.fault_epoch > e0

    def test_out_of_range_checked(self):
        arr = WordArray("t", 4, 32)
        with pytest.raises(IndexError):
            arr.flip(4, 0)
        with pytest.raises(IndexError):
            arr.flip(0, 32)

    def test_locate(self):
        arr = WordArray("t", 4, 32)
        assert arr.locate(0) == (0, 0)
        assert arr.locate(33) == (1, 1)
        with pytest.raises(IndexError):
            arr.locate(4 * 32)


class TestWatch:
    def test_read_first(self):
        arr = WordArray("t", 4, 32)
        arr.watch_entry(2, 5)
        arr.read(2)
        assert arr.watch_event() == "read"
        arr.write(2, 1)  # later write must not override
        assert arr.watch_event() == "read"

    def test_overwritten_first(self):
        arr = WordArray("t", 4, 32)
        arr.watch_entry(2, 5)
        arr.write(2, 1)
        assert arr.watch_event() == "overwritten"

    def test_other_entries_ignored(self):
        arr = WordArray("t", 4, 32)
        arr.watch_entry(2, 5)
        arr.read(1)
        arr.write(3, 9)
        assert arr.watch_event() is None


class TestLineArray:
    def test_fill_read_write(self):
        arr = LineArray("l", 4, 64)
        arr.fill(1, bytes(range(64)))
        assert arr.read_bytes(1, 8, 4) == bytes([8, 9, 10, 11])
        arr.write_bytes(1, 8, b"\xAA\xBB")
        assert arr.read_bytes(1, 8, 2) == b"\xaa\xbb"

    def test_read_unfilled_is_error(self):
        arr = LineArray("l", 4, 64)
        with pytest.raises(ValueError):
            arr.read_bytes(0, 0, 4)

    def test_flip_on_filled_line(self):
        arr = LineArray("l", 2, 64)
        arr.fill(0, bytes(64))
        arr.flip(0, 8 * 5 + 3)   # byte 5, bit 3
        assert arr.read_bytes(0, 5, 1) == bytes([0x08])

    def test_flip_on_unfilled_line_is_noop(self):
        arr = LineArray("l", 2, 64)
        arr.flip(1, 0)
        arr.fill(1, bytes(64))
        assert arr.read_bytes(1, 0, 1) == b"\x00"

    def test_stuck_bit_applies_on_read(self):
        arr = LineArray("l", 2, 64)
        arr.fill(0, bytes(64))
        arr.set_stuck(0, 8 * 3, 1, start=0)
        assert arr.read_bytes(0, 3, 1, cycle=1) == b"\x01"
        assert arr.peek_line(0)[3] == 0

    def test_watch_byte_granularity(self):
        arr = LineArray("l", 2, 64)
        arr.fill(0, bytes(64))
        arr.watch_entry(0, 8 * 10)       # bit in byte 10
        arr.write_bytes(0, 0, b"\xFF" * 5)  # bytes 0-4: not covering
        assert arr.watch_event() is None
        arr.write_bytes(0, 10, b"\x00")  # covers byte 10
        assert arr.watch_event() == "overwritten"

    def test_fill_counts_as_covering_write(self):
        arr = LineArray("l", 2, 64)
        arr.fill(0, bytes(64))
        arr.watch_entry(0, 0)
        arr.fill(0, bytes(64))
        assert arr.watch_event() == "overwritten"

    def test_invalidate(self):
        arr = LineArray("l", 2, 64)
        arr.fill(0, bytes(64))
        arr.invalidate(0)
        assert not arr.is_filled(0)

    @given(st.integers(min_value=0, max_value=511))
    def test_flip_twice_identity(self, bit):
        arr = LineArray("l", 1, 64)
        arr.fill(0, bytes(range(64)) )
        arr.flip(0, bit)
        arr.flip(0, bit)
        assert arr.peek_line(0) == bytes(range(64))


class TestFaultSite:
    def test_default_liveness(self):
        site = FaultSite("x", WordArray("x", 4, 8))
        assert site.live(0) and site.live(3)
        assert site.total_bits == 32

    def test_custom_liveness(self):
        site = FaultSite("x", WordArray("x", 4, 8),
                         live=lambda e: e == 2)
        assert site.live(2) and not site.live(0)
