"""Unit and property tests for the packed issue queue."""

import pytest
from hypothesis import given, strategies as st

from repro.uarch.issueq import ENTRY_BITS, KINDS, OPS, IssueQueue


class _FakeRob:
    def __init__(self, seq=0):
        self.seq = seq
        self.state = 0


def insert(iq, **kw):
    args = dict(kind="alu", op="add", dst=5, src1=1, rdy1=True, src2=2,
                rdy2=True, size=4, imm=0)
    args.update(kw)
    return iq.insert(_FakeRob(), **args)


class TestPacking:
    @given(st.sampled_from(sorted(KINDS)),
           st.sampled_from(sorted(OPS)),
           st.one_of(st.none(), st.integers(min_value=0, max_value=511)),
           st.one_of(st.none(), st.integers(min_value=0, max_value=511)),
           st.booleans(),
           st.one_of(st.none(), st.integers(min_value=0, max_value=511)),
           st.booleans(),
           st.integers(min_value=0, max_value=7),
           st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    def test_roundtrip(self, kind, op, dst, src1, rdy1, src2, rdy2, size,
                       imm):
        iq = IssueQueue("iq", 4)
        idx = insert(iq, kind=kind, op=op, dst=dst, src1=src1, rdy1=rdy1,
                     src2=src2, rdy2=rdy2, size=size, imm=imm)
        slot = iq.view(idx)
        assert slot.kind == kind
        assert slot.op == op
        assert slot.dst == dst
        assert slot.src1 == src1
        assert slot.src2 == src2
        assert slot.size == size
        assert slot.imm == imm
        if src1 is not None:
            assert slot.rdy1 == rdy1
        else:
            assert slot.rdy1
        if src2 is not None:
            assert slot.rdy2 == rdy2
        else:
            assert slot.rdy2

    def test_entry_width_documented(self):
        assert ENTRY_BITS > 64  # packed entries are wide words


class TestQueueOps:
    def test_full_queue_rejects(self):
        iq = IssueQueue("iq", 2)
        assert insert(iq) is not None
        assert insert(iq) is not None
        assert insert(iq) is None
        assert iq.count == 2

    def test_release_recycles(self):
        iq = IssueQueue("iq", 1)
        idx = insert(iq)
        iq.release(idx)
        assert iq.count == 0
        assert insert(iq) is not None

    def test_wake_sets_ready_bits(self):
        iq = IssueQueue("iq", 4)
        idx = insert(iq, src1=7, rdy1=False, src2=9, rdy2=False)
        iq.wake(7)
        slot = iq.view(idx)
        assert slot.rdy1 and not slot.rdy2
        iq.wake(9)
        assert iq.view(idx).rdy2

    def test_wake_same_tag_both_sources(self):
        iq = IssueQueue("iq", 4)
        idx = insert(iq, src1=7, rdy1=False, src2=7, rdy2=False)
        iq.wake(7)
        slot = iq.view(idx)
        assert slot.rdy1 and slot.rdy2

    def test_wake_released_slot_harmless(self):
        iq = IssueQueue("iq", 4)
        idx = insert(iq, src1=7, rdy1=False)
        iq.release(idx)
        iq.wake(7)  # must not crash or corrupt

    def test_occupied(self):
        iq = IssueQueue("iq", 4)
        a = insert(iq)
        b = insert(iq)
        assert set(iq.occupied()) == {a, b}


class TestFaultInteraction:
    def test_flip_changes_decoded_source(self):
        iq = IssueQueue("iq", 4)
        idx = insert(iq, src1=1, rdy1=True)
        before = iq.view(idx).src1
        # src1 field starts at bit offset 19 (kind 3 + op 5 + dst 9 +
        # has_dst 1 + ... ); flip its LSB via the documented layout.
        from repro.uarch.issueq import _OFF_SRC1
        iq.array.flip(idx, _OFF_SRC1)
        after = iq.view(idx).src1
        assert after == before ^ 1

    def test_flip_ready_bit_can_deadlock_entry(self):
        iq = IssueQueue("iq", 4)
        idx = insert(iq, src1=7, rdy1=True)
        from repro.uarch.issueq import _OFF_RDY1
        iq.array.flip(idx, _OFF_RDY1)
        assert not iq.view(idx).rdy1  # now waits forever: Timeout class

    def test_view_tracks_fault_epoch(self):
        iq = IssueQueue("iq", 4)
        idx = insert(iq, imm=100)
        assert iq.view(idx).imm == 100
        from repro.uarch.issueq import _OFF_IMM
        iq.array.flip(idx, _OFF_IMM + 1)
        assert iq.view(idx).imm == 102

    def test_stuck_fault_forces_unpacked_reads(self):
        iq = IssueQueue("iq", 4)
        idx = insert(iq, imm=0)
        from repro.uarch.issueq import _OFF_IMM
        iq.array.set_stuck(idx, _OFF_IMM, 1, start=0, end=10)
        assert iq.view(idx, cycle=5).imm == 1
        assert iq.view(idx, cycle=50).imm == 0

    def test_site_liveness(self):
        iq = IssueQueue("iq", 4)
        site = iq.site()
        idx = insert(iq)
        assert site.live(idx)
        other = (idx + 1) % 4
        assert not site.live(other)
