"""Offline integrity checking (``repro.tools fsck``).

A clean study produced by the real scheduler must pass with zero
findings; every class of damage — torn tails, duplicated set_ids,
swapped masks, cooked counts, a golden that disagrees with its family,
a blob that does not hash to its name — must come back as a named
finding.  ``--repair`` may only ever truncate torn tails.
"""

import json

import pytest

from repro import tools
from repro.sched import StudySpec
from repro.svc import CampaignService, fsck_path, fsck_service, fsck_study

SETUP = "MaFIN-x86"


def spec(**over):
    base = dict(setups=(SETUP,), benchmarks=("sha",),
                structures=("int_rf",), fault_types=("transient",),
                injections=2, seed=7)
    base.update(over)
    return StudySpec(**base)


@pytest.fixture(scope="module")
def service_root(tmp_path_factory):
    """A finished one-study service root, the clean baseline."""
    root = tmp_path_factory.mktemp("svc-fsck")
    with CampaignService(root, workers=1, fsync=False) as svc:
        sid = svc.submit(spec(), tenant="alice")
        svc.run_until_idle(timeout_s=120)
    return root, sid


@pytest.fixture()
def study_dir(service_root, tmp_path):
    """A disposable copy of the clean study directory."""
    import shutil
    root, sid = service_root
    dst = tmp_path / sid
    shutil.copytree(root / "studies" / sid, dst)
    return dst


def checks(findings):
    return sorted({f["check"] for f in findings})


class TestCleanDirectories:
    def test_clean_study_has_no_findings(self, study_dir):
        assert fsck_study(study_dir) == []

    def test_clean_service_has_no_findings(self, service_root):
        root, _ = service_root
        assert fsck_service(root) == []

    def test_fsck_path_autodetects(self, service_root, study_dir,
                                   tmp_path):
        root, _ = service_root
        assert fsck_path(root)[0] == "service"
        assert fsck_path(study_dir)[0] == "study"
        with pytest.raises(ValueError, match="neither"):
            fsck_path(tmp_path)


class TestStudyFindings:
    def logs_file(self, study_dir):
        return next((study_dir / "logs").glob("*.jsonl"))

    def masks_file(self, study_dir):
        return next((study_dir / "masks").glob("*.jsonl"))

    def test_torn_journal_tail_reported_and_repaired(self, study_dir):
        journal = study_dir / "journal.jsonl"
        good = journal.read_text()
        journal.write_text(good + '{"kind": "unit", "st')
        found = fsck_study(study_dir)
        assert checks(found) == ["journal-parse"]
        assert not found[0]["repaired"]
        found = fsck_study(study_dir, repair=True)
        assert found[0]["repaired"]
        assert journal.read_text() == good
        assert fsck_study(study_dir) == []

    def test_mid_file_corruption_is_not_repairable(self, study_dir):
        journal = study_dir / "journal.jsonl"
        lines = journal.read_text().splitlines()
        lines[1] = lines[1][:10]
        journal.write_text("".join(line + "\n" for line in lines))
        found = fsck_study(study_dir, repair=True)
        assert checks(found) == ["journal-parse"]
        assert not found[0]["repaired"]

    def test_duplicate_set_id(self, study_dir):
        logs = self.logs_file(study_dir)
        lines = logs.read_text().splitlines()
        inj = next(line for line in lines
                   if json.loads(line)["kind"] == "injection")
        logs.write_text("".join(line + "\n" for line in lines)
                        + inj + "\n")
        assert "duplicate-set-id" in checks(fsck_study(study_dir))

    def test_record_masks_swapped(self, study_dir):
        logs = self.logs_file(study_dir)
        rows = [json.loads(line)
                for line in logs.read_text().splitlines()]
        injections = [r for r in rows if r["kind"] == "injection"]
        a, b = injections[0]["data"], injections[1]["data"]
        a["masks"], b["masks"] = b["masks"], a["masks"]
        logs.write_text("".join(json.dumps(r) + "\n" for r in rows))
        assert "record-mask-mismatch" in checks(fsck_study(study_dir))

    def test_cooked_counts(self, study_dir):
        journal = study_dir / "journal.jsonl"
        rows = [json.loads(line)
                for line in journal.read_text().splitlines()]
        for row in rows:
            if row.get("state") == "done":
                row["counts"] = {"Masked": 999}
        journal.write_text("".join(json.dumps(r) + "\n" for r in rows))
        assert "counts-mismatch" in checks(fsck_study(study_dir))

    def test_missing_logs_file(self, study_dir):
        self.logs_file(study_dir).unlink()
        found = fsck_study(study_dir)
        assert checks(found) == ["logs-parse"]
        assert "missing" in found[0]["detail"]

    def test_unknown_unit_and_bad_state(self, study_dir):
        journal = study_dir / "journal.jsonl"
        with open(journal, "a") as fh:
            fh.write(json.dumps({"kind": "unit", "unit": "not/in/plan",
                                 "state": "leased"}) + "\n")
            fh.write(json.dumps({"kind": "unit",
                                 "unit": "also/not/planned",
                                 "state": "meditating"}) + "\n")
        found = checks(fsck_study(study_dir))
        assert "journal-unknown-unit" in found
        assert "journal-bad-state" in found


class TestServiceFindings:
    def test_bad_blob_digest(self, service_root, tmp_path):
        import shutil
        root, sid = service_root
        dst = tmp_path / "root"
        shutil.copytree(root, dst)
        (dst / "blobs").mkdir(exist_ok=True)
        (dst / "blobs" / ("ab" * 32 + ".blob")).write_bytes(b"not that")
        assert "blob-digest" in checks(fsck_service(dst))

    def test_missing_study_dir(self, service_root, tmp_path):
        import shutil
        root, sid = service_root
        dst = tmp_path / "root"
        shutil.copytree(root, dst)
        shutil.rmtree(dst / "studies" / sid)
        assert "missing-study-dir" in checks(fsck_service(dst))

    def test_epoch_regression(self, service_root, tmp_path):
        import shutil
        root, _ = service_root
        dst = tmp_path / "root"
        shutil.copytree(root, dst)
        with open(dst / "service.jsonl", "a") as fh:
            fh.write(json.dumps({"kind": "epoch", "epoch": 1}) + "\n")
            fh.write(json.dumps({"kind": "epoch", "epoch": 1}) + "\n")
        assert "epoch-regression" in checks(fsck_service(dst))


class TestFsckCli:
    def test_clean_exits_zero(self, study_dir, capsys):
        assert tools.main(["fsck", str(study_dir)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corrupt_exits_three_with_named_findings(self, study_dir,
                                                     capsys):
        (study_dir / "journal.jsonl").write_text("")
        code = tools.main(["fsck", str(study_dir)])
        out = capsys.readouterr().out
        assert code == 3
        assert "journal-header" in out

    def test_repair_then_clean(self, study_dir, capsys):
        journal = study_dir / "journal.jsonl"
        journal.write_text(journal.read_text() + '{"torn')
        assert tools.main(["fsck", str(study_dir)]) == 3
        capsys.readouterr()
        assert tools.main(["fsck", "--repair", str(study_dir)]) == 0
        assert "repaired" in capsys.readouterr().out
        assert tools.main(["fsck", str(study_dir)]) == 0

    def test_json_output(self, study_dir, capsys):
        assert tools.main(["fsck", "--json", str(study_dir)]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body == {"kind": "study", "findings": [], "clean": True}

    def test_not_a_campaign_directory(self, tmp_path, capsys):
        assert tools.main(["fsck", str(tmp_path)]) == 2
        assert "neither" in capsys.readouterr().err
