"""Unit tests for the repro.obs building blocks: sinks and metrics."""

import json

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (JSONLSink, NULL_TRACER, NullSink,
                             RingBufferSink, TeeSink, TraceEvent, Tracer,
                             load_events)


class TestTracerAndSinks:
    def test_null_tracer_is_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit("inject_start", set_id=1)  # must not raise

    def test_ring_buffer_records_in_order(self):
        sink = RingBufferSink(capacity=8)
        tracer = Tracer(sink)
        assert tracer.enabled
        tracer.emit("golden_start", label="GeFIN-x86")
        tracer.emit("golden_end", cycles=100, wall_s=0.5)
        assert sink.names() == ["golden_start", "golden_end"]
        assert sink.events[1].fields["cycles"] == 100
        assert sink.events[0].ts <= sink.events[1].ts

    def test_ring_buffer_caps_capacity(self):
        sink = RingBufferSink(capacity=3)
        tracer = Tracer(sink)
        for i in range(10):
            tracer.emit("inject_end", set_id=i)
        assert len(sink) == 3
        assert [e.fields["set_id"] for e in sink.events] == [7, 8, 9]

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tracer = Tracer(JSONLSink(path))
        tracer.emit("campaign_start", setup="MaFIN-x86", masks=4)
        tracer.emit("campaign_end", injections=4)
        tracer.close()
        events = load_events(path)
        assert [e.name for e in events] == ["campaign_start",
                                            "campaign_end"]
        assert events[0].fields == {"setup": "MaFIN-x86", "masks": 4}

    def test_jsonl_sink_drops_writes_after_close(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tracer = Tracer(JSONLSink(path))
        tracer.emit("classify", wall_s=0.1)
        tracer.close()
        tracer.emit("classify", wall_s=0.2)  # late emit: dropped, no error
        assert len(load_events(path)) == 1

    def test_tee_sink_fans_out(self, tmp_path):
        ring = RingBufferSink()
        path = tmp_path / "events.jsonl"
        tracer = Tracer(TeeSink(ring, JSONLSink(path)))
        tracer.emit("early_stop", reason="overwritten")
        tracer.close()
        assert ring.names() == ["early_stop"]
        assert load_events(path)[0].fields["reason"] == "overwritten"

    def test_event_dict_round_trip(self):
        ev = TraceEvent("inject_end", ts=12.5,
                        fields={"set_id": 3, "reason": "exit"})
        assert TraceEvent.from_dict(ev.to_dict()) == ev

    def test_null_sink_interface(self):
        sink = NullSink()
        sink.write(TraceEvent("x", 0.0))
        sink.close()


class TestMetricsPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge()
        g.set(3.5)
        assert g.value == 3.5

    def test_histogram_observe_and_mean(self):
        h = Histogram()
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3 and h.total == 6.0
        assert h.min == 1.0 and h.max == 3.0 and h.mean == 2.0

    def test_histogram_merge(self):
        a, b = Histogram(), Histogram()
        a.observe(1.0)
        b.observe(5.0)
        b.observe(0.5)
        a.merge(b)
        assert a.count == 3 and a.min == 0.5 and a.max == 5.0
        empty = Histogram()
        empty.merge(a)
        assert empty.to_dict() == a.to_dict()

    def test_histogram_percentiles_bounded_by_buckets(self):
        # The log-bucketed estimate lands within the true value's
        # bucket: one bucket is a 10^(1/8) ≈ 1.33x ratio, so every
        # estimate is within 33% of the exact order statistic.
        h = Histogram()
        for v in range(1, 1001):
            h.observe(float(v))
        for q, exact in ((50, 500), (90, 900), (99, 990)):
            est = h.percentile(q)
            assert exact / 1.34 <= est <= exact * 1.34, (q, est)

    def test_histogram_percentile_edges(self):
        h = Histogram()
        assert h.percentile(50) == 0.0           # no data
        h.observe(2.0)
        # A single observation: every percentile is that value,
        # exactly (estimates clamp to the observed min/max).
        assert h.percentile(0) == 2.0
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 2.0
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_histogram_percentile_counts_zeros(self):
        h = Histogram()
        for _ in range(9):
            h.observe(0.0)
        h.observe(10.0)
        assert h.percentile(50) == 0.0
        assert h.percentile(99) == 10.0

    def test_histogram_summary_fields(self):
        h = Histogram()
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert s["mean"] == pytest.approx(7.0 / 3)
        assert 1.0 <= s["p50"] <= 4.0
        assert s["p50"] <= s["p90"] <= s["p99"] <= 4.0

    def test_histogram_percentiles_survive_merge_and_round_trip(self):
        # Percentile state (buckets) must merge associatively and
        # survive to_dict/from_dict — workers ship histograms home.
        shards = [Histogram() for _ in range(4)]
        for i in range(1, 401):
            shards[i % 4].observe(float(i))
        merged = Histogram()
        for s in shards:
            merged.merge(Histogram.from_dict(
                json.loads(json.dumps(s.to_dict()))))
        whole = Histogram()
        for i in range(1, 401):
            whole.observe(float(i))
        assert merged.to_dict() == whole.to_dict()
        assert merged.percentile(90) == whole.percentile(90)


class TestMetricsRegistry:
    def test_get_or_create_and_families(self):
        reg = MetricsRegistry()
        reg.counter("outcomes.exit").inc(3)
        reg.counter("outcomes.panic").inc()
        reg.counter("injections_total").inc(4)
        assert reg.family("outcomes.") == {"exit": 3, "panic": 1}
        assert reg.counter_value("injections_total") == 4
        assert reg.counter_value("missing") == 0

    def test_serialisation_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("injections_total").inc(7)
        reg.gauge("golden.cycles").set(1234)
        reg.histogram("time.inject_s").observe(0.25)
        clone = MetricsRegistry.from_dict(
            json.loads(json.dumps(reg.to_dict())))
        assert clone.to_dict() == reg.to_dict()

    def test_merge_is_additive_for_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("injections_total").inc(2)
        b.counter("injections_total").inc(3)
        a.histogram("time.inject_s").observe(1.0)
        b.histogram("time.inject_s").observe(2.0)
        b.gauge("golden.cycles").set(99)
        a.merge(b)
        assert a.counter_value("injections_total") == 5
        assert a.histogram("time.inject_s").count == 2
        assert a.gauge("golden.cycles").value == 99

    def test_merge_order_independence(self):
        def build(values):
            reg = MetricsRegistry()
            for v in values:
                reg.counter("cycles.simulated").inc(v)
                reg.histogram("time.inject_s").observe(v / 10)
            return reg

        ab = build([1, 2]).merge(build([3]))
        ba = build([3]).merge(build([1, 2]))
        assert ab.to_dict() == ba.to_dict()
