"""Tests for the command-line drivers (`python -m repro.tools`)."""

import json
import os

import pytest

from repro import tools


class TestFiguresCommand:
    def test_small_figure_run(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_INJECTIONS", "3")
        rc = tools.main(["figures", "--structures", "int_rf",
                         "--benchmarks", "sha",
                         "--injections", "3",
                         "--out", str(tmp_path)])
        assert rc == 0
        text = (tmp_path / "fig2_int_rf.txt").read_text()
        assert "int_rf" in text and "AVG" in text
        rows = json.loads((tmp_path / "fig2_int_rf.json").read_text())
        assert any(r["benchmark"] == "AVG" for r in rows)
        out = capsys.readouterr().out
        assert "sha" in out

    def test_nonfigure_structure_name(self, tmp_path):
        rc = tools.main(["figures", "--structures", "ras",
                         "--benchmarks", "sha", "--injections", "2",
                         "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "ras_ras.txt").exists()


class TestStatsCommand:
    def test_stats_output(self, tmp_path, capsys):
        out_file = tmp_path / "stats.json"
        rc = tools.main(["stats", "--benchmarks", "sha",
                         "--out", str(out_file)])
        assert rc == 0
        rows = json.loads(out_file.read_text())
        assert "sha/MaFIN-x86" in rows
        assert rows["sha/MaFIN-x86"]["committed_instrs"] > 0

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            tools.main([])
