"""Tests for the command-line drivers (`python -m repro.tools`)."""

import json
import os

import pytest

from repro import tools


class TestFiguresCommand:
    def test_small_figure_run(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_INJECTIONS", "3")
        rc = tools.main(["figures", "--structures", "int_rf",
                         "--benchmarks", "sha",
                         "--injections", "3",
                         "--out", str(tmp_path)])
        assert rc == 0
        text = (tmp_path / "fig2_int_rf.txt").read_text()
        assert "int_rf" in text and "AVG" in text
        rows = json.loads((tmp_path / "fig2_int_rf.json").read_text())
        assert any(r["benchmark"] == "AVG" for r in rows)
        out = capsys.readouterr().out
        assert "sha" in out

    def test_nonfigure_structure_name(self, tmp_path):
        rc = tools.main(["figures", "--structures", "ras",
                         "--benchmarks", "sha", "--injections", "2",
                         "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "ras_ras.txt").exists()


class TestCampaignCommand:
    def test_serial_campaign_with_events_and_logs(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        logs = tmp_path / "logs.jsonl"
        rc = tools.main(["campaign", "GeFIN-x86", "sha", "l1d",
                         "--injections", "4", "--seed", "3",
                         "--events", str(events), "--logs", str(logs)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign telemetry" in out
        assert "vulnerability" in out
        assert events.exists() and logs.exists()
        names = [json.loads(line)["name"]
                 for line in events.read_text().splitlines()]
        assert "golden_end" in names and names.count("inject_end") == 4
        assert "classify" in names  # classified before the sink closed

    def test_parallel_campaign(self, capsys):
        rc = tools.main(["campaign", "GeFIN-x86", "sha", "int_rf",
                         "--injections", "4", "--workers", "2"])
        assert rc == 0
        assert "injections/sec" in capsys.readouterr().out


class TestObsSummarizeCommand:
    def test_summarize_report(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        tools.main(["campaign", "GeFIN-x86", "sha", "l1d",
                    "--injections", "3", "--events", str(events)])
        capsys.readouterr()
        rc = tools.main(["obs", "summarize", str(events)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign telemetry report" in out
        assert "phase timing" in out
        assert "GeFIN-x86 / sha / l1d" in out

    def test_summarize_json(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        tools.main(["campaign", "GeFIN-x86", "sha", "l1d",
                    "--injections", "3", "--events", str(events)])
        capsys.readouterr()
        rc = tools.main(["obs", "summarize", str(events), "--json"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["injections"] == 3
        assert "checkpoint" in summary

    def test_summarize_tolerates_torn_trailing_line(self, tmp_path,
                                                    capsys):
        events = tmp_path / "events.jsonl"
        tools.main(["campaign", "GeFIN-x86", "sha", "l1d",
                    "--injections", "3", "--events", str(events)])
        capsys.readouterr()
        # Simulate a kill mid-append: chop the last line in half.
        text = events.read_text()
        events.write_text(text[:len(text) - 20])
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            rc = tools.main(["obs", "summarize", str(events)])
        assert rc == 0
        assert "campaign telemetry report" in capsys.readouterr().out

    def test_summarize_rejects_mid_file_corruption(self, tmp_path,
                                                   capsys):
        events = tmp_path / "events.jsonl"
        lines = ['{"name": "campaign_start", "ts": 1.0}',
                 "definitely not json",
                 '{"name": "campaign_end", "ts": 2.0}']
        events.write_text("\n".join(lines) + "\n")
        rc = tools.main(["obs", "summarize", str(events)])
        assert rc == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_summarize_follow_drains_completed_study_stream(
            self, tmp_path, capsys):
        # A stream ending in study_end: --follow renders what is
        # there and exits instead of tailing forever.
        events = tmp_path / "events.jsonl"
        rows = [{"name": "study_start", "ts": 1.0, "units": 1},
                {"name": "unit_leased", "ts": 1.1, "unit": "u",
                 "attempt": 1},
                {"name": "unit_done", "ts": 1.9, "unit": "u",
                 "injections": 2, "wall_s": 0.8},
                {"name": "study_end", "ts": 2.0, "done": 1,
                 "quarantined": 0, "wall_s": 1.0}]
        events.write_text("".join(json.dumps(r) + "\n" for r in rows))
        rc = tools.main(["obs", "summarize", str(events), "--follow",
                         "--interval", "0.05", "--json"])
        assert rc == 0
        out = capsys.readouterr().out
        summary = json.loads(out[:out.index("\n{") + 1]
                             if "\n{" in out else out)
        assert summary["sched"]["done"] == 1

    def test_requires_obs_subcommand(self):
        with pytest.raises(SystemExit):
            tools.main(["obs"])


class TestFiguresEventsCapture:
    def test_figures_events_flag(self, tmp_path):
        rc = tools.main(["figures", "--structures", "int_rf",
                         "--benchmarks", "sha", "--injections", "2",
                         "--out", str(tmp_path), "--events"])
        assert rc == 0
        events = tmp_path / "fig2_int_rf.events.jsonl"
        assert events.exists()
        names = [json.loads(line)["name"]
                 for line in events.read_text().splitlines()]
        # Three setups' campaigns share the figure's event stream.
        assert names.count("campaign_end") == 3


class TestStatsCommand:
    def test_stats_output(self, tmp_path, capsys):
        out_file = tmp_path / "stats.json"
        rc = tools.main(["stats", "--benchmarks", "sha",
                         "--out", str(out_file)])
        assert rc == 0
        rows = json.loads(out_file.read_text())
        assert "sha/MaFIN-x86" in rows
        assert rows["sha/MaFIN-x86"]["committed_instrs"] > 0

    def test_stats_json_flag(self, capsys):
        rc = tools.main(["stats", "--benchmarks", "sha", "--json"])
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        assert "sha/GeFIN-x86" in rows

    def test_stats_json_carries_distributions(self, capsys):
        rc = tools.main(["stats", "--benchmarks", "sha", "--json"])
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        dists = rows["_distributions"]
        cells = [v for k, v in rows.items() if k != "_distributions"]
        cyc = dists["cycles"]
        assert cyc["count"] == len(cells)
        assert cyc["min"] == min(c["cycles"] for c in cells)
        assert cyc["max"] == max(c["cycles"] for c in cells)
        assert cyc["min"] <= cyc["p50"] <= cyc["p99"] <= cyc["max"]

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            tools.main([])


class TestCampaignTimeoutFlag:
    def test_zero_budget_classifies_everything_timeout(self, capsys):
        rc = tools.main(["campaign", "GeFIN-x86", "sha", "int_rf",
                         "--injections", "3", "--timeout-s", "0.0",
                         "--no-early-stop"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Timeout=3" in out

    def test_generous_budget_changes_nothing(self, capsys):
        tools.main(["campaign", "GeFIN-x86", "sha", "int_rf",
                    "--injections", "3", "--seed", "5"])
        plain = capsys.readouterr().out.splitlines()[1]
        tools.main(["campaign", "GeFIN-x86", "sha", "int_rf",
                    "--injections", "3", "--seed", "5",
                    "--timeout-s", "600"])
        budgeted = capsys.readouterr().out.splitlines()[1]
        assert budgeted == plain


class TestSchedCommands:
    ARGS = ["--benchmarks", "sha", "--structures", "int_rf",
            "--injections", "3", "--seed", "7", "--workers", "2"]

    def test_run_then_status_and_json(self, tmp_path, capsys):
        study = tmp_path / "study"
        rc = tools.main(["sched", "run", "--out", str(study), *self.ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "done" in out and "totals:" in out

        rc = tools.main(["sched", "status", str(study)])
        assert rc == 0
        assert "done=2" in capsys.readouterr().out

        rc = tools.main(["sched", "status", str(study), "--json"])
        assert rc == 0
        status = json.loads(capsys.readouterr().out)
        assert status["units"] == 2
        assert status["tally"]["done"] == 2

    def test_run_json_output(self, tmp_path, capsys):
        study = tmp_path / "study"
        rc = tools.main(["sched", "run", "--out", str(study), "--json",
                         *self.ARGS])
        assert rc == 0
        result = json.loads(capsys.readouterr().out)
        assert result["ok"] and len(result["units"]) == 2

    def test_shard_run_and_merge(self, tmp_path, capsys):
        args = ["--benchmarks", "sha", "--structures", "int_rf", "l1i",
                "--injections", "3", "--seed", "7"]
        dirs = []
        for i in range(2):
            d = tmp_path / f"shard{i}"
            rc = tools.main(["sched", "run", "--out", str(d),
                             "--shard", f"{i}/2", *args])
            assert rc == 0
            dirs.append(str(d))
        capsys.readouterr()
        merged_file = tmp_path / "merged.json"
        rc = tools.main(["sched", "merge", *dirs,
                         "--out", str(merged_file)])
        assert rc == 0
        assert "complete" in capsys.readouterr().out
        merged = json.loads(merged_file.read_text())
        assert merged["complete"] and len(merged["units"]) == 4

    def test_status_missing_journal(self, tmp_path, capsys):
        rc = tools.main(["sched", "status", str(tmp_path / "nope")])
        assert rc == 2
        assert "no journal" in capsys.readouterr().err

    def test_bad_shard_syntax(self, tmp_path):
        with pytest.raises(SystemExit):
            tools.main(["sched", "run", "--out", str(tmp_path / "s"),
                        "--shard", "zero-of-two", *self.ARGS])
