"""Integration tests for dispatcher, campaign controller, repositories
and the checkpoint store — the paper's Fig. 1 flow end to end."""

import copy

import pytest

from repro.core.campaign import InjectionCampaign
from repro.core.checkpoint import CheckpointStore
from repro.core.dispatcher import InjectorDispatcher
from repro.core.fault import (INTERMITTENT, PERMANENT, TRANSIENT, FaultMask,
                              FaultSet)
from repro.core.outcome import MASKED
from repro.core.parser import classify
from repro.core.repository import LogsRepository, MasksRepository
from repro.errors import CampaignError
from repro.sim.config import setup_config

from tests.helpers import tiny_program


def make_dispatcher(setup="MaFIN-x86", **kw):
    config = setup_config(setup)
    return InjectorDispatcher(config, tiny_program(config.isa), **kw)


@pytest.fixture(scope="module")
def golden_dispatcher():
    d = make_dispatcher()
    d.run_golden()
    return d


class TestCheckpointStore:
    class _FakeSim:
        """Minimal snapshot-protocol machine: a cycle and a payload."""

        def __init__(self):
            self.cycle = 0
            self.payload = 0
            self.taken: list[int] = []

        def snapshot(self):
            self.taken.append(self.cycle)
            return {"cycle": self.cycle, "payload": self.payload}

        def restore(self, state):
            self.cycle = state["cycle"]
            self.payload = state["payload"]
            return self

    def test_adaptive_thinning_bounds_memory(self):
        store = CheckpointStore(interval=10, max_snaps=4)
        sim = self._FakeSim()
        for cycle in range(0, 1000, 5):
            sim.cycle = cycle
            store.maybe_take(sim)
        assert store.count < 4
        cycles = store.cycles
        assert cycles == sorted(cycles)

    def test_restore_before_picks_latest(self):
        store = CheckpointStore(interval=10, max_snaps=8)
        sim = self._FakeSim()
        for cycle in (10, 20, 30):
            sim.cycle = cycle
            store.maybe_take(sim)
        target = self._FakeSim()
        assert store.restore_before(25, target) is target
        assert target.cycle == 20
        assert store.restore_before(5, self._FakeSim()) is None

    def test_restores_are_independent(self):
        store = CheckpointStore(interval=1, max_snaps=4)
        sim = self._FakeSim()
        sim.cycle = 1
        sim.payload = 7
        store.maybe_take(sim)
        a, b = self._FakeSim(), self._FakeSim()
        store.restore_before(10, a)
        a.payload = 99                      # mutating one restored machine…
        store.restore_before(10, b)
        assert b.payload == 7               # …never leaks into the next

    def test_thinning_rounds_keep_schedule_and_lookup(self):
        # An odd budget makes the thinning pass drop the *newest*
        # snapshot, the case where the old `_next_due` derivation lagged.
        store = CheckpointStore(interval=10, max_snaps=5)
        sim = self._FakeSim()
        for cycle in range(1, 200):
            sim.cycle = cycle
            store.maybe_take(sim)
            assert store.count < 5
            assert store.cycles == sorted(store.cycles)
        # Interval doubled across several thinning rounds (10→20→40)
        # and snapshots stayed `interval` apart from the last *taken*
        # one — with the drift bug the sequence was 10..50,60,80,…
        assert store.interval == 40
        assert sim.taken == [10, 20, 30, 40, 50, 70, 90, 110, 150, 190]
        # restore_before always finds the latest snapshot ≤ cycle.
        for cycle in range(0, 200, 7):
            expected = max((c for c in store.cycles if c <= cycle),
                           default=None)
            snap = store.state_before(cycle)
            if expected is None:
                assert snap is None
            else:
                assert snap[0] == expected

    def test_from_snapshots_round_trip(self):
        store = CheckpointStore(interval=10, max_snaps=8)
        sim = self._FakeSim()
        for cycle in (10, 20, 30):
            sim.cycle = cycle
            store.maybe_take(sim)
        clone = CheckpointStore.from_snapshots(store.snapshots,
                                               interval=store.interval,
                                               max_snaps=store.max_snaps)
        assert clone.cycles == store.cycles
        assert clone.nbytes == store.nbytes
        target = self._FakeSim()
        clone.restore_before(25, target)
        assert target.cycle == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointStore(interval=0)
        with pytest.raises(ValueError):
            CheckpointStore(max_snaps=1)


class TestDispatcher:
    def test_golden_reference_contents(self, golden_dispatcher):
        g = golden_dispatcher.golden
        assert g.exit_code == 0
        assert g.cycles > 500
        assert len(g.output_hex) == 24  # three out() words
        assert g.stats["committed_instrs"] > 0
        assert golden_dispatcher.checkpoints.count >= 2

    def test_inject_requires_golden(self):
        d = make_dispatcher()
        with pytest.raises(CampaignError, match="run_golden"):
            d.inject(FaultSet(masks=(FaultMask("l1d", 0, 0, 10),)))

    def test_unknown_structure_rejected(self, golden_dispatcher):
        fs = FaultSet(masks=(FaultMask("warp-core", 0, 0, 10),))
        with pytest.raises(CampaignError, match="warp-core"):
            golden_dispatcher.inject(fs)

    def test_injection_is_reproducible(self, golden_dispatcher):
        fs = FaultSet(masks=(FaultMask("l1d", 5, 100, 400),), set_id=1)
        a = golden_dispatcher.inject(fs)
        b = golden_dispatcher.inject(fs)
        assert a.reason == b.reason
        assert a.output_hex == b.output_hex
        assert a.early_stop == b.early_stop

    def test_early_stop_agrees_with_full_run(self, golden_dispatcher):
        """The §III.B optimizations must never change the verdict."""
        golden = golden_dispatcher.golden
        checked = 0
        for i in range(12):
            fs = FaultSet(masks=(FaultMask("l1d", (i * 3) % 32,
                                           (i * 41) % 512,
                                           50 + i * 97),), set_id=i)
            fast = golden_dispatcher.inject(fs, early_stop=True)
            slow = golden_dispatcher.inject(fs, early_stop=False)
            if fast.early_stop is not None:
                checked += 1
                assert classify(slow, golden) == MASKED, (i, slow.reason)
            else:
                assert classify(fast, golden) == classify(slow, golden)
        assert checked > 0  # the optimization actually fired

    def test_early_stop_runs_are_shorter(self, golden_dispatcher):
        fs_list = [FaultSet(masks=(FaultMask("l1d", i % 32, (i * 7) % 512,
                                             100 + i * 50),), set_id=i)
                   for i in range(10)]
        fast = [golden_dispatcher.inject(fs, early_stop=True)
                for fs in fs_list]
        slow = [golden_dispatcher.inject(fs, early_stop=False)
                for fs in fs_list]
        assert sum(r.cycles for r in fast) < sum(r.cycles for r in slow)

    def test_permanent_fault_applies_from_start(self, golden_dispatcher):
        # Stuck-at on a code-holding L1I line would need residency; use
        # the register file instead: stuck bit in a hot register.
        fs = FaultSet(masks=(FaultMask("int_rf", 2, 3, 0,
                                       fault_type=PERMANENT,
                                       stuck_value=1),))
        rec = golden_dispatcher.inject(fs)
        assert rec.reason in ("exit", "killed", "panic", "deadlock",
                              "cycle-limit", "assert", "sim-crash")

    def test_intermittent_fault_window(self, golden_dispatcher):
        fs = FaultSet(masks=(FaultMask("lsq", 3, 7, 200,
                                       fault_type=INTERMITTENT,
                                       duration=300, stuck_value=1),))
        rec = golden_dispatcher.inject(fs)
        assert rec.cycles > 0

    def test_multi_fault_set(self, golden_dispatcher):
        fs = FaultSet(masks=(FaultMask("l1d", 1, 9, 300),
                             FaultMask("int_rf", 30, 5, 500)), set_id=9)
        rec = golden_dispatcher.inject(fs)
        assert len(rec.masks) == 2


class TestRepositories:
    def test_masks_roundtrip_via_file(self, tmp_path):
        path = tmp_path / "masks.jsonl"
        repo = MasksRepository(path)
        sets = [FaultSet(masks=(FaultMask("l1d", 1, 2, 3),), set_id=0),
                FaultSet(masks=(FaultMask("int_rf", 4, 5, 6,
                                          fault_type=PERMANENT),),
                         set_id=1)]
        repo.add_all(sets)
        reloaded = MasksRepository(path)
        assert list(reloaded) == sets

    def test_logs_roundtrip_via_file(self, tmp_path, golden_dispatcher):
        path = tmp_path / "logs.jsonl"
        logs = LogsRepository(path)
        logs.set_golden(golden_dispatcher.golden)
        rec = golden_dispatcher.inject(
            FaultSet(masks=(FaultMask("l1d", 0, 0, 100),)))
        logs.add(rec)
        reloaded = LogsRepository(path)
        assert reloaded.golden.output_hex == \
            golden_dispatcher.golden.output_hex
        assert len(reloaded) == 1
        assert reloaded.records[0].reason == rec.reason

    def test_in_memory_mode(self):
        repo = MasksRepository()
        repo.add_all([FaultSet(masks=(FaultMask("l1d", 0, 0, 1),))])
        assert len(repo) == 1


class TestCampaignController:
    def test_end_to_end_small_campaign(self, tmp_path):
        config = setup_config("GeFIN-x86")
        campaign = InjectionCampaign(
            config, tiny_program("x86"), "tiny", "l1d", seed=11,
            masks_path=tmp_path / "masks.jsonl",
            logs_path=tmp_path / "logs.jsonl")
        n = campaign.prepare(injections=8)
        assert n == 8
        result = campaign.run()
        assert result.injections == 8
        counts = result.classify()
        assert sum(counts.values()) == 8
        assert 0.0 <= result.vulnerability() <= 1.0
        # Logs survive on disk with the golden reference.
        reloaded = LogsRepository(tmp_path / "logs.jsonl")
        assert len(reloaded) == 8 and reloaded.golden is not None

    def test_same_seed_same_classification(self):
        config = setup_config("MaFIN-x86")

        def once():
            c = InjectionCampaign(config, tiny_program("x86"), "tiny",
                                  "lsq", seed=5)
            c.prepare(injections=6)
            return c.run().classify()

        assert once() == once()

    def test_unknown_structure(self):
        config = setup_config("MaFIN-x86")
        c = InjectionCampaign(config, tiny_program("x86"), "tiny",
                              "flux-capacitor")
        with pytest.raises(KeyError, match="flux-capacitor"):
            c.prepare(injections=2)

    def test_run_requires_prepare(self):
        config = setup_config("MaFIN-x86")
        c = InjectionCampaign(config, tiny_program("x86"), "tiny", "l1d")
        with pytest.raises(RuntimeError, match="prepare"):
            c.run()

    def test_progress_callback(self):
        config = setup_config("GeFIN-x86")
        c = InjectionCampaign(config, tiny_program("x86"), "tiny", "int_rf",
                              seed=2)
        c.prepare(injections=3)
        seen = []
        c.run(progress=lambda i, n, rec: seen.append((i, n)))
        assert seen == [(1, 3), (2, 3), (3, 3)]
