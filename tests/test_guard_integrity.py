"""repro.guard integrity: digests, restore purity, contamination drill."""

import json

import pytest

from repro.core.campaign import InjectionCampaign
from repro.core.dispatcher import InjectorDispatcher
from repro.core.maskgen import FaultMaskGenerator, StructureInfo
from repro.errors import CampaignError
from repro.guard import IntegrityVerifier, state_digest
from repro.guard.integrity import chaos_leak_due
from repro.obs.trace import RingBufferSink, Tracer
from repro.sim.config import setup_config

from tests.helpers import fresh_sim, tiny_program

SETUPS = ("MaFIN-x86", "GeFIN-x86")


def _dispatcher(setup, guard="strict", tracer=None, **kw):
    config = setup_config(setup)
    d = InjectorDispatcher(config, tiny_program(config.isa), guard=guard,
                           tracer=tracer, **kw)
    d.run_golden()
    return d


def _sets(dispatcher, count, structure="int_rf", seed=3):
    sites = dispatcher.fault_sites()
    info = StructureInfo.of_site(sites[structure])
    return FaultMaskGenerator(seed).generate(info,
                                             dispatcher.golden.cycles,
                                             count=count)


# -- the digest ------------------------------------------------------------

@pytest.mark.parametrize("setup", SETUPS + ("GeFIN-ARM",))
def test_digest_stable_across_snapshot_restore(setup):
    sim = fresh_sim(setup)
    for _ in range(300):
        sim.step()
    state = sim.snapshot()
    before = state_digest(state)
    for _ in range(150):
        sim.step()
    sim.restore(state)
    assert state_digest(sim.snapshot()) == before
    # and digesting the stored blob twice is a no-op on it
    assert state_digest(state) == before


def test_digest_detects_single_byte_drift():
    sim = fresh_sim("GeFIN-x86")
    for _ in range(200):
        sim.step()
    state = sim.snapshot()
    before = state_digest(state)
    data, perms = state["mem"]
    state["mem"] = (bytes([data[0] ^ 1]) + data[1:], perms)
    assert state_digest(state) != before


def test_digest_detects_register_drift():
    sim = fresh_sim("MaFIN-x86")
    for _ in range(200):
        sim.step()
    state = sim.snapshot()
    before = state_digest(state)
    state["cycle"] += 1
    assert state_digest(state) != before


# -- satellite: restore purity after a contained sim-crash -----------------

@pytest.mark.parametrize("setup", SETUPS)
def test_restore_purity_after_sim_crash(setup):
    """After a faulty run dies mid-flight, the next restore must hand
    back a machine whose digest matches the sealed pristine digest —
    the acceptance criterion that no faulty-run mutation leaks through
    the in-place restore path."""
    d = _dispatcher(setup, guard="strict")
    fault_set = _sets(d, 1)[0]

    real_step = type(d._sim).step
    calls = {"n": 0}

    def crashing_step():
        calls["n"] += 1
        if calls["n"] > 40:
            raise IndexError("corrupted state blew up mid-run")
        real_step(d._sim)

    d._sim.step = crashing_step
    try:
        record = d.inject(fault_set, early_stop=False)
    finally:
        del d._sim.step
    assert record.reason == "sim-crash"

    sealed = d._integrity._digests[0]
    sim = d._fresh_sim(0)
    assert sim.cycle == 0
    assert state_digest(sim.snapshot()) == sealed
    assert d._integrity.contaminations == 0


# -- the verifier ----------------------------------------------------------

def test_verifier_cadence_and_unsealed_behaviour():
    v = IntegrityVerifier(every=2)
    assert not v.sealed
    assert [v.due() for _ in range(5)] == [False, True, False, True, False]
    with pytest.raises(CampaignError):
        v.rebuild()
    assert IntegrityVerifier(every=0).due() is False


def test_chaos_directive_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_GUARD_CHAOS", raising=False)
    assert not chaos_leak_due(1)
    monkeypatch.setenv("REPRO_GUARD_CHAOS", "leak:3")
    assert not chaos_leak_due(2)
    assert chaos_leak_due(3)
    assert not chaos_leak_due(4)
    monkeypatch.setenv("REPRO_GUARD_CHAOS", "leak")
    assert chaos_leak_due(1)
    monkeypatch.setenv("REPRO_GUARD_CHAOS", "leak:x")
    assert not chaos_leak_due(1)
    monkeypatch.setenv("REPRO_GUARD_CHAOS", "other")
    assert not chaos_leak_due(1)


# -- the contamination drill -----------------------------------------------

@pytest.mark.parametrize("setup", SETUPS)
def test_contamination_drill_classifications_match_clean_run(
        setup, monkeypatch):
    """The ISSUE's acceptance drill, in miniature: leak a mutation into
    the shared golden stores mid-campaign; with --guard strict the
    campaign must detect it, condemn and rebuild the machine, and end
    with records byte-identical to an uncontaminated campaign."""
    monkeypatch.delenv("REPRO_GUARD_CHAOS", raising=False)
    d_clean = _dispatcher(setup, guard="off")
    sets = _sets(d_clean, 8)
    clean = [d_clean.inject(fs, early_stop=False).to_dict()
             for fs in sets]

    monkeypatch.setenv("REPRO_GUARD_CHAOS", "leak:4")
    sink = RingBufferSink()
    d = _dispatcher(setup, guard="strict", tracer=Tracer(sink))
    drilled = [d.inject(fs, early_stop=False).to_dict() for fs in sets]

    assert d._integrity.contaminations == 1
    assert json.dumps(clean, sort_keys=True) == \
        json.dumps(drilled, sort_keys=True)
    assert "guard.contamination" in sink.names()


def test_second_drift_after_rebuild_is_fatal(monkeypatch):
    monkeypatch.delenv("REPRO_GUARD_CHAOS", raising=False)
    d = _dispatcher("GeFIN-x86", guard="strict")
    fault_set = _sets(d, 1)[0]

    # A drift the vault cannot cure (e.g. the machine itself is broken):
    # verify fails again right after the rebuild, which is unexplainable
    # and must abort the campaign instead of rebuilding forever.
    monkeypatch.setattr(IntegrityVerifier, "verify",
                        lambda self, sim: False)
    with pytest.raises(CampaignError, match="after a rebuild"):
        d.inject(fault_set, early_stop=False)
    assert d._integrity.contaminations == 1


def test_guard_off_never_digests(monkeypatch):
    """Chaos leaks with the guard off go undetected by design — the
    drill's control arm — and the off policy does zero digest work."""
    monkeypatch.setenv("REPRO_GUARD_CHAOS", "leak:1")
    d = _dispatcher("GeFIN-x86", guard="off")
    assert d._integrity is None
    record = d.inject(_sets(d, 1)[0], early_stop=False)
    assert record is not None       # run completed, contamination unseen


def test_campaign_api_accepts_guard(monkeypatch):
    monkeypatch.delenv("REPRO_GUARD_CHAOS", raising=False)
    config = setup_config("MaFIN-x86")
    campaign = InjectionCampaign(config, tiny_program(config.isa), "tiny",
                                 "int_rf", seed=11, guard="basic")
    campaign.prepare(injections=3)
    result = campaign.run()
    assert sum(result.classify().values()) == 3
