"""repro.guard invariant checker: registry, cadence, Assert mapping."""

import pytest

from repro.core.dispatcher import InjectorDispatcher
from repro.core.fault import FaultMask, FaultSet
from repro.core.maskgen import FaultMaskGenerator, StructureInfo
from repro.core.outcome import ASSERT
from repro.core.parser import classify
from repro.guard import GuardPolicy
from repro.guard.invariants import (INVARIANTS, InvariantViolation,
                                    check_invariants)
from repro.errors import SimAssertError
from repro.sim.base import LsqEntry, RobEntry
from repro.sim.config import setup_config

from tests.helpers import fresh_sim, tiny_program

SETUPS = ("MaFIN-x86", "GeFIN-x86", "GeFIN-ARM")


def _dispatcher(setup, guard="basic", **kw):
    config = setup_config(setup)
    d = InjectorDispatcher(config, tiny_program(config.isa), guard=guard,
                           **kw)
    d.run_golden()
    return d


def _one_set(dispatcher, structure="int_rf", seed=1):
    sites = dispatcher.fault_sites()
    info = StructureInfo.of_site(sites[structure])
    return FaultMaskGenerator(seed).generate(info,
                                             dispatcher.golden.cycles,
                                             count=1)[0]


# -- the registry -----------------------------------------------------------

def test_registry_names_are_unique_and_stable():
    names = [name for name, _ in INVARIANTS]
    assert len(names) == len(set(names))
    assert set(names) == {"rob-age-order", "lsq-age-order",
                          "iq-wakeup-consistency",
                          "rename-freelist-disjoint", "cache-tag-sanity"}


@pytest.mark.parametrize("setup", SETUPS)
def test_clean_machine_satisfies_all_invariants(setup):
    """Golden-path execution must never trip an invariant (no false
    positives — a guard that asserts on clean machines would corrupt
    the Assert class statistics)."""
    sim = fresh_sim(setup)
    for _ in range(800):
        sim.step()
        check_invariants(sim)


def test_violation_is_a_sim_assert_error():
    exc = InvariantViolation("rob-age-order", 42, "whatever")
    assert isinstance(exc, SimAssertError)
    assert exc.invariant == "rob-age-order"
    assert exc.cycle == 42
    assert "cycle 42" in str(exc)


# -- each invariant trips on hand-corrupted state ---------------------------

def _run_until(sim, pred, limit=3000):
    for _ in range(limit):
        sim.step()
        if pred(sim):
            return
    raise AssertionError("condition never reached")


def test_rob_age_order_trips():
    sim = fresh_sim("GeFIN-x86")
    _run_until(sim, lambda s: len(s.rob) >= 2)
    sim.rob[0].seq, sim.rob[1].seq = sim.rob[1].seq, sim.rob[0].seq
    with pytest.raises(InvariantViolation) as ei:
        check_invariants(sim)
    assert ei.value.invariant == "rob-age-order"


def test_rename_disjoint_trips():
    sim = fresh_sim("GeFIN-x86")
    sim.free_list.append(sim.map[0])
    with pytest.raises(InvariantViolation) as ei:
        check_invariants(sim)
    assert ei.value.invariant == "rename-freelist-disjoint"


def test_cache_tag_sanity_trips_on_dirty_invalid_line():
    sim = fresh_sim("GeFIN-x86")
    c = sim.l1d
    line = c.sets * c.assoc - 1          # topmost line: never touched
    assert not c.is_valid_line(line)
    c.tags.write(line, c._dirty_bit)
    with pytest.raises(InvariantViolation) as ei:
        check_invariants(sim)
    assert ei.value.invariant == "cache-tag-sanity"


def test_cache_lru_permutation_trips():
    sim = fresh_sim("MaFIN-x86")
    sim.l2.lru[0][0] = sim.l2.lru[0][1]  # duplicate way in the order
    with pytest.raises(InvariantViolation) as ei:
        check_invariants(sim)
    assert ei.value.invariant == "cache-tag-sanity"


def test_lsq_age_order_trips():
    sim = fresh_sim("GeFIN-x86")
    older, newer = RobEntry(7, None, 0, None), RobEntry(3, None, 0, None)
    e1, e2 = LsqEntry(7, False, 0, older), LsqEntry(3, False, 1, newer)
    older.lsq, newer.lsq = e1, e2
    sim.lsq[:] = [e1, e2]                # 7 before 3: age order broken
    with pytest.raises(InvariantViolation) as ei:
        check_invariants(sim)
    assert ei.value.invariant == "lsq-age-order"


def test_iq_wakeup_consistency_trips():
    sim = fresh_sim("MaFIN-x86")
    sim.iq.count += 1
    with pytest.raises(InvariantViolation) as ei:
        check_invariants(sim)
    assert ei.value.invariant == "iq-wakeup-consistency"


# -- dispatcher wiring ------------------------------------------------------

def test_violation_classifies_as_assert_with_name_and_cycle(monkeypatch):
    d = _dispatcher("GeFIN-x86", guard="basic")
    fault_set = _one_set(d)

    def trip(sim):
        raise InvariantViolation("rob-age-order", sim.cycle, "synthetic")

    monkeypatch.setattr("repro.core.dispatcher.check_invariants", trip)
    record = d.inject(fault_set, early_stop=False)
    assert record.reason == "assert"
    assert record.invariant == "rob-age-order"
    assert "rob-age-order" in record.detail and "cycle" in record.detail
    assert classify(record, d.golden) == ASSERT


def test_real_tag_fault_trips_cache_invariant():
    """End to end: a real injected fault in a live cache line's dirty
    bit is latent corruption (MaFIN's mirror-mode caches must never go
    dirty) that only the invariant checker surfaces, as an Assert."""
    probe = fresh_sim("MaFIN-x86")
    for _ in range(400):
        probe.step()
    c = probe.l1d
    line = next(i for i in range(c.sets * c.assoc) if c.is_valid_line(i))
    mask = FaultMask("l1d_tag", entry=line, bit=c.tag_bits + 1, cycle=400)
    tight = GuardPolicy(name="tight", invariants=True, invariant_every=1)
    d = _dispatcher("MaFIN-x86", guard=tight)
    record = d.inject(FaultSet([mask], set_id=0), early_stop=False)
    assert record.reason == "assert"
    assert record.invariant == "cache-tag-sanity"
    # The unguarded dispatcher never notices the same fault.
    d_off = _dispatcher("MaFIN-x86", guard="off")
    rec_off = d_off.inject(FaultSet([mask], set_id=0), early_stop=False)
    assert rec_off.invariant is None and rec_off.reason != "assert"


def test_invariants_off_by_default():
    d = _dispatcher("GeFIN-x86", guard="off")
    assert d.guard is not None and not d.guard.invariants
    fault_set = _one_set(d)
    record = d.inject(fault_set, early_stop=True)
    assert record.invariant is None


def test_guard_policy_presets_and_coercion():
    assert GuardPolicy.of(None).name == "off"
    assert GuardPolicy.of("strict").integrity_every == 1
    assert GuardPolicy.of("basic").containment
    policy = GuardPolicy.of("basic")
    assert GuardPolicy.of(policy) is policy
    with pytest.raises(ValueError):
        GuardPolicy.of("paranoid")
    with pytest.raises(TypeError):
        GuardPolicy.of(42)
