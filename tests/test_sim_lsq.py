"""Regression tests for LSQ behaviour: forwarding, ordering, replay.

These cover the two memory-system bugs the differential traces caught
during development (stale forwarding from the oldest instead of the
youngest matching store; wrong-path load faults) plus the policy
differences the study depends on.
"""

import pytest

from repro.sim.config import setup_config
from repro.sim.gem5 import build_sim

from tests.helpers import EXIT_X86, assemble_x86


def run(setup, body, data=""):
    prog = assemble_x86(body + EXIT_X86, data=data)
    return build_sim(prog, setup_config(setup)).run()


class TestForwarding:
    @pytest.mark.parametrize("setup", ["MaFIN-x86", "GeFIN-x86"])
    def test_youngest_store_wins(self, setup):
        """Two in-flight stores to one address: the load must see the
        younger value (regression: oldest-match forwarding)."""
        body = """
  li r1, =buf
  li r2, 11
  store [r1+0], r2
  li r3, 22
  store [r1+0], r3
  load r4, [r1+0]
  mov r1, r4
  li r0, 2
  syscall
"""
        prog = assemble_x86(body, data="buf: .space 4\n")
        out = build_sim(prog, setup_config(setup)).run()
        assert out.exit_code == 22

    @pytest.mark.parametrize("setup", ["MaFIN-x86", "GeFIN-x86"])
    def test_store_load_chain_through_loop(self, setup):
        """A pointer-chase through memory with rapid store/load reuse."""
        body = """
  li r1, =buf
  li r4, 0
  li r5, 0
loop:
  store [r1+0], r4
  load r6, [r1+0]
  add r5, r6
  add r4, 1
  cmp r4, 30
  jne loop
  mov r1, r5
  li r0, 2
  syscall
"""
        prog = assemble_x86(body, data="buf: .space 4\n")
        out = build_sim(prog, setup_config(setup)).run()
        assert out.exit_code == sum(range(30)) & 0xFF

    def test_forwarding_counted(self):
        body = """
  li r1, =buf
  li r2, 5
  store [r1+0], r2
  load r3, [r1+0]
  mov r1, r3
  li r0, 2
  syscall
"""
        prog = assemble_x86(body, data="buf: .space 4\n")
        out = build_sim(prog, setup_config("GeFIN-x86")).run()
        assert out.exit_code == 5


class TestReplayPolicy:
    def test_marss_replays_gem5_does_not(self):
        """A store whose address resolves slowly (long dependency chain)
        followed by a fast load to the same address: MARSS issues the
        load early and replays; gem5 waits."""
        body = """
  li r1, =buf
  li r7, 99
  store [r1+0], r7
  li r2, 0
  ; slow chain computing the store address
  li r3, 1
  li r5, 7
  mul r3, r5
  div r3, r5
  mul r3, 0
  add r3, r1
  li r6, 55
  store [r3+0], r6
  load r4, [r1+0]
  mov r1, r4
  li r0, 2
  syscall
"""
        prog = assemble_x86(body, data="buf: .space 8\n")
        m_out = build_sim(prog, setup_config("MaFIN-x86")).run()
        g_out = build_sim(prog, setup_config("GeFIN-x86")).run()
        # Architectural result identical on both...
        assert m_out.exit_code == g_out.exit_code == 55
        # ...but only MARSS shows replay/extra-issue activity overall.
        assert m_out.stats["load_replays"] >= g_out.stats["load_replays"]
        assert g_out.stats["load_replays"] == 0

    def test_issued_vs_committed_loads_gap(self):
        from tests.helpers import tiny_sim_outcome
        m = tiny_sim_outcome("MaFIN-x86").stats
        g = tiny_sim_outcome("GeFIN-x86").stats
        m_gap = m["issued_loads"] / max(m["committed_loads"], 1)
        g_gap = g["issued_loads"] / max(g["committed_loads"], 1)
        assert m_gap > g_gap


class TestQueueCapacity:
    @pytest.mark.parametrize("setup", ["MaFIN-x86", "GeFIN-x86"])
    def test_store_burst_exceeding_queue(self, setup):
        """More back-to-back stores than LSQ entries must still retire
        correctly (dispatch stalls, no loss)."""
        lines = ["  li r1, =buf"]
        for i in range(40):
            lines.append(f"  li r2, {i}")
            lines.append(f"  store [r1+{4 * i}], r2")
        lines.append("  load r3, [r1+156]")
        lines.append("  mov r1, r3")
        lines.append("  li r0, 2")
        lines.append("  syscall")
        prog = assemble_x86("\n".join(lines) + "\n",
                            data="buf: .space 160\n")
        out = build_sim(prog, setup_config(setup)).run()
        assert out.exit_code == 39
