"""The structured snapshot/restore engine (docs/performance.md).

Property under test: a machine restored from ``snapshot()`` state is
*bit-identical* to the machine that produced it — same output, same
kernel events, same exit code, same cycle count, same stats — on every
setup, at any point of the run, whether the state is loaded into a
fresh machine, re-loaded into a used one, or shipped to a worker
process via the parallel payload.
"""

from __future__ import annotations

import pytest

from repro.core import parallel
from repro.core.dispatcher import InjectorDispatcher
from repro.core.fault import FaultMask, FaultSet
from repro.core.parallel import run_campaign_parallel
from repro.obs.summarize import load_events, summarize_events
from repro.sim.config import setup_config
from repro.sim.gem5 import build_sim

from tests.helpers import tiny_program

SETUPS = ("MaFIN-x86", "GeFIN-x86", "GeFIN-ARM")


def _fingerprint(outcome):
    return (outcome.cycles, outcome.exit_code, bytes(outcome.output),
            tuple(outcome.events), dict(outcome.stats))


def _machine(setup):
    config = setup_config(setup)
    return build_sim(tiny_program(config.isa), config), config


class TestSnapshotEquivalence:
    @pytest.mark.parametrize("setup", SETUPS)
    def test_restored_run_is_bit_identical(self, setup):
        probe, config = _machine(setup)
        ref = _fingerprint(probe.run())
        for fraction in (0.1, 0.5, 0.9):
            cut = max(1, int(ref[0] * fraction))
            source, _ = _machine(setup)
            for _ in range(cut):
                source.step()
            state = source.snapshot()

            # The state loads into a *different* machine of the same
            # shape and the run finishes exactly like the reference.
            other, _ = _machine(setup)
            assert _fingerprint(other.restore(state).run()) == ref
            # Restoring never perturbed the stored state: loading the
            # same blob into the (now fully run) machine again works.
            assert _fingerprint(other.restore(state).run()) == ref
            # And the source machine itself was not disturbed by
            # taking the snapshot.
            assert _fingerprint(source.run()) == ref

    @pytest.mark.parametrize("setup", SETUPS)
    def test_deepcopy_shim_matches(self, setup):
        import copy
        source, _ = _machine(setup)
        for _ in range(300):
            source.step()
        clone = copy.deepcopy(source)
        assert clone is not source
        assert clone.cycle == source.cycle
        assert _fingerprint(clone.run()) == _fingerprint(source.run())

    def test_restore_clears_faults_and_watches(self):
        source, _ = _machine("MaFIN-x86")
        ref = _fingerprint(build_sim(source.program, source.config).run())
        for _ in range(200):
            source.step()
        state = source.snapshot()
        site = source.fault_sites()["l1d"]
        site.array.flip(2, 3)
        site.array.set_stuck(0, 0, 1, start=0)
        site.array.watch_entry(1, 2)
        # Loading pre-fault state must wipe the flip, the stuck-at and
        # the early-stop watch — the dispatcher relies on this between
        # injection runs.
        assert _fingerprint(source.restore(state).run()) == ref

    def test_fault_sites_survive_restore(self):
        sim, _ = _machine("GeFIN-x86")
        sites = sim.fault_sites()
        assert sim.fault_sites() is sites          # cached per machine
        state = sim.snapshot()
        for _ in range(100):
            sim.step()
        sim.restore(state)
        # In-place restore keeps array identity, so the cached site map
        # (and its liveness closures) stays valid.
        assert sim.fault_sites() is sites
        assert sites["l1d"].array is sim.l1d.data


class TestParallelShipping:
    def test_worker_adopts_parent_golden(self):
        from repro.bench import suite
        config = setup_config("MaFIN-x86", scaled=True)
        program = suite.program("sha", config.isa, 1)
        parent = InjectorDispatcher(config, program, n_checkpoints=6)
        parent.run_golden()
        blob = parallel._build_payload(parent)
        spec = parallel._CellSpec("MaFIN-x86", "sha", "l1d", True, True,
                                  1, 6)
        parallel._worker_init(spec, blob)
        try:
            worker = parallel._WORKER_STATE["dispatcher"]
            assert worker.golden.to_dict() == parent.golden.to_dict()
            assert worker.checkpoints.cycles == parent.checkpoints.cycles
            # Re-pickling round-tripped state can shift a few bytes of
            # memo encoding; the footprint must still agree closely.
            assert abs(worker.checkpoint_bytes - parent.checkpoint_bytes) \
                < 0.01 * parent.checkpoint_bytes
            assert worker.golden_sample is None  # never ran golden
            fs = FaultSet(masks=(FaultMask("l1d", 3, 17, 400),), set_id=0)
            theirs = worker.inject(fs)
            ours = parent.inject(fs)
            assert theirs.to_dict() == ours.to_dict()
            names = [row["name"]
                     for row in parallel._WORKER_STATE["sink"].rows]
            assert "inject_start" in names and "inject_end" in names
        finally:
            parallel._WORKER_STATE.clear()

    def test_parallel_events_carry_restore_detail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        n = 4
        result = run_campaign_parallel("GeFIN-x86", "sha", "l1d",
                                       injections=n, seed=21, workers=2,
                                       events_path=path)
        assert result.injections == n
        events = load_events(path)
        names = [ev["name"] for ev in events]
        assert names.count("inject_start") == n
        assert names.count("inject_end") == n
        # The worker-side restore trace made it home.
        assert any(name in ("checkpoint_restored", "cold_start")
                   for name in names)
        summary = summarize_events(events)
        checkpoint = summary["checkpoint"]
        assert checkpoint["restores"] + checkpoint["cold_starts"] == n
        assert checkpoint["bytes"] > 0
        assert summary["golden"]["snapshot_s"] > 0.0
