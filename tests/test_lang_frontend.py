"""Unit tests for the MiniC lexer, parser and semantic analysis."""

import pytest

from repro.errors import CompileError
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.sema import analyze


class TestLexer:
    def test_numbers_and_hex(self):
        toks = tokenize("12 0x1F")
        assert [t.value for t in toks[:2]] == [12, 31]

    def test_keywords_vs_identifiers(self):
        toks = tokenize("if iffy")
        assert toks[0].kind == "kw"
        assert toks[1].kind == "ident"

    def test_two_char_operators(self):
        toks = tokenize("a <= b << c && d")
        ops = [t.value for t in toks if t.kind == "op"]
        assert ops == ["<=", "<<", "&&"]

    def test_comments_skipped(self):
        toks = tokenize("a // line\n/* block\nstill */ b")
        idents = [t.value for t in toks if t.kind == "ident"]
        assert idents == ["a", "b"]

    def test_bad_character(self):
        with pytest.raises(CompileError, match="unexpected"):
            tokenize("a @ b")

    def test_line_numbers(self):
        toks = tokenize("a\nb\nc")
        assert [t.line for t in toks[:3]] == [1, 2, 3]


class TestParser:
    def test_precedence(self):
        mod = parse("func main() { var x = 1 + 2 * 3; }")
        init = mod.funcs[0].body.stmts[0].init
        assert isinstance(init, ast.Binary) and init.op == "+"
        assert init.right.op == "*"

    def test_parentheses(self):
        mod = parse("func main() { var x = (1 + 2) * 3; }")
        init = mod.funcs[0].body.stmts[0].init
        assert init.op == "*"

    def test_unary_chain(self):
        mod = parse("func main() { var x = -~!1; }")
        u = mod.funcs[0].body.stmts[0].init
        assert (u.op, u.operand.op, u.operand.operand.op) == ("-", "~", "!")

    def test_else_if_chain(self):
        mod = parse(
            "func main() { if (1) { } else if (2) { } else { } }")
        stmt = mod.funcs[0].body.stmts[0]
        assert isinstance(stmt.orelse.stmts[0], ast.If)

    def test_for_with_empty_parts(self):
        mod = parse("func main() { for (;;) { break; } }")
        stmt = mod.funcs[0].body.stmts[0]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_array_assignment_vs_index_expr(self):
        mod = parse("int a[4]; func main() { a[0] = a[1] + 1; }")
        stmt = mod.funcs[0].body.stmts[0]
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.Index)

    def test_global_with_initializers(self):
        mod = parse("int x = 5; int a[3] = {1, -2, 3}; func main() { }")
        assert mod.globals[0].init == 5
        assert mod.globals[1].init == [1, -2, 3]

    def test_call_statement(self):
        mod = parse("func f() { } func main() { f(); }")
        stmt = mod.funcs[1].body.stmts[0]
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.Call)

    def test_missing_semicolon(self):
        with pytest.raises(CompileError):
            parse("func main() { var x = 1 }")

    def test_garbage_toplevel(self):
        with pytest.raises(CompileError, match="top level"):
            parse("banana;")


class TestSema:
    def good(self, src):
        return analyze(parse(src))

    def bad(self, src, match):
        with pytest.raises(CompileError, match=match):
            analyze(parse(src))

    def test_requires_main(self):
        self.bad("func f() { }", "main")

    def test_main_no_params(self):
        self.bad("func main(x) { }", "parameters")

    def test_undefined_variable(self):
        self.bad("func main() { x = 1; }", "undefined")

    def test_undefined_function(self):
        self.bad("func main() { f(); }", "unknown function")

    def test_arity_mismatch(self):
        self.bad("func f(a, b) { } func main() { f(1); }", "expects 2")

    def test_too_many_params(self):
        self.bad("func f(a, b, c, d, e) { } func main() { }", "exceeds")

    def test_duplicate_local(self):
        self.bad("func main() { var x; var x; }", "duplicate")

    def test_duplicate_global(self):
        self.bad("int x; int x; func main() { }", "duplicate")

    def test_array_used_as_scalar(self):
        self.bad("int a[4]; func main() { var x = a; }", "as scalar")

    def test_scalar_indexed(self):
        self.bad("int x; func main() { var y = x[0]; }", "not a global array")

    def test_break_outside_loop(self):
        self.bad("func main() { break; }", "outside loop")

    def test_scalar_list_initializer(self):
        self.bad("int x = {1, 2}; func main() { }", "cannot take a list")

    def test_array_scalar_initializer(self):
        self.bad("int a[3] = 4; func main() { }", "list initializer")

    def test_too_many_initializers(self):
        self.bad("int a[2] = {1, 2, 3}; func main() { }", "too many")

    def test_param_and_local_indices(self):
        info = self.good(
            "func f(a, b) { var c; var d; return a; } func main() { }")
        f = info["funcs"]["f"]
        assert [l.name for l in f.locals] == ["a", "b", "c", "d"]
        assert [l.index for l in f.locals] == [0, 1, 2, 3]
        assert f.locals[0].is_param and not f.locals[2].is_param

    def test_locals_scoped_per_function(self):
        info = self.good(
            "func f() { var x; return x; } func main() { var x; x = 1; }")
        assert len(info["funcs"]["f"].locals) == 1
        assert len(info["funcs"]["main"].locals) == 1
