"""Masks/logs repositories: reopen idempotence, dedup, durability."""

import json
import os

import pytest

from repro.core.fault import FaultMask, FaultSet
from repro.core.outcome import GoldenReference, InjectionRecord
from repro.core.repository import LogsRepository, MasksRepository
from repro.errors import CampaignError


def fault_set(set_id):
    return FaultSet(masks=(FaultMask("l1d", entry=set_id, bit=0,
                                     cycle=10 + set_id),),
                    set_id=set_id)


def record(set_id, reason="exit"):
    return InjectionRecord(set_id=set_id,
                           masks=[fault_set(set_id).masks[0].to_dict()],
                           reason=reason, exit_code=0, output_hex="ab")


GOLDEN = GoldenReference(cycles=100, exit_code=0, output_hex="ab")


class TestMasksRepository:
    def test_reopen_and_readd_appends_nothing(self, tmp_path):
        path = tmp_path / "masks.jsonl"
        sets = [fault_set(i) for i in range(3)]
        MasksRepository(path).add_all(sets)
        size = path.stat().st_size

        # A resumed process regenerates the same deterministic masks
        # and re-adds them: the file must not grow, contents must not
        # duplicate.
        repo = MasksRepository(path)
        assert len(repo) == 3
        repo.add_all(sets)
        assert len(repo) == 3
        assert path.stat().st_size == size

    def test_partial_overlap_appends_only_fresh(self, tmp_path):
        path = tmp_path / "masks.jsonl"
        MasksRepository(path).add_all([fault_set(0), fault_set(1)])
        repo = MasksRepository(path)
        repo.add_all([fault_set(1), fault_set(2)])
        assert sorted(fs.set_id for fs in repo) == [0, 1, 2]
        assert sorted(fs.set_id for fs in MasksRepository(path)) == [0, 1, 2]

    def test_contains(self, tmp_path):
        repo = MasksRepository()
        repo.add_all([fault_set(7)])
        assert 7 in repo and 8 not in repo

    def test_fsync_flag_writes_durably(self, tmp_path):
        path = tmp_path / "masks.jsonl"
        MasksRepository(path, fsync=True).add_all([fault_set(0)])
        assert len(MasksRepository(path)) == 1


class TestLogsRepository:
    def test_reopen_and_readd_appends_nothing(self, tmp_path):
        path = tmp_path / "logs.jsonl"
        repo = LogsRepository(path)
        repo.set_golden(GOLDEN)
        repo.add(record(0))
        repo.add(record(1))
        size = path.stat().st_size

        # Crash-resume: reattach, re-set the identical golden, replay
        # the campaign loop over the same set_ids.
        repo2 = LogsRepository(path)
        assert repo2.golden == GOLDEN
        assert len(repo2) == 2
        repo2.set_golden(GOLDEN)
        repo2.add(record(0))
        repo2.add(record(1))
        assert len(repo2) == 2
        assert path.stat().st_size == size

    def test_resume_skip_list(self, tmp_path):
        path = tmp_path / "logs.jsonl"
        repo = LogsRepository(path)
        repo.set_golden(GOLDEN)
        repo.add(record(0))
        repo2 = LogsRepository(path)
        assert repo2.set_ids == {0}
        assert 0 in repo2 and 1 not in repo2
        repo2.add(record(1))               # only the missing injection
        assert LogsRepository(path).set_ids == {0, 1}

    def test_duplicate_add_keeps_first_record(self, tmp_path):
        repo = LogsRepository(tmp_path / "logs.jsonl")
        repo.add(record(0, reason="exit"))
        repo.add(record(0, reason="panic"))
        assert len(repo) == 1
        assert repo.records[0].reason == "exit"

    def test_changed_golden_appends_and_last_wins(self, tmp_path):
        path = tmp_path / "logs.jsonl"
        repo = LogsRepository(path)
        repo.set_golden(GOLDEN)
        other = GoldenReference(cycles=200, exit_code=0, output_hex="cd")
        repo.set_golden(other)
        assert LogsRepository(path).golden == other
        # Two golden rows on disk: the file stayed append-only.
        rows = path.read_text().strip().splitlines()
        assert sum('"golden"' in r for r in rows) == 2

    def test_fsync_flag_writes_durably(self, tmp_path):
        path = tmp_path / "logs.jsonl"
        repo = LogsRepository(path, fsync=True)
        repo.set_golden(GOLDEN)
        repo.add(record(0))
        loaded = LogsRepository(path)
        assert loaded.golden == GOLDEN and len(loaded) == 1


class TestTornTailReopen:
    """Crash-interrupted appends: reopen repairs, then life goes on."""

    def make_torn_logs(self, path):
        repo = LogsRepository(path)
        repo.set_golden(GOLDEN)
        repo.add(record(0))
        good = path.read_text()
        with open(path, "a") as fh:
            fh.write('{"kind": "injection", "data": {"set_')
        return good

    def test_repair_then_duplicate_set_id_append(self, tmp_path):
        # The torn row *was* record 1's append; after repair the resume
        # loop re-adds record 0 (a duplicate, skipped) and record 1
        # (genuinely missing) — the file must end up exactly as if the
        # crash never happened.
        path = tmp_path / "logs.jsonl"
        good = self.make_torn_logs(path)
        with pytest.warns(RuntimeWarning, match="torn"):
            repo = LogsRepository(path)
        assert path.read_text() == good
        assert repo.set_ids == {0}
        repo.add(record(0))                # duplicate: skipped
        repo.add(record(1))
        assert path.read_text().startswith(good)
        reloaded = LogsRepository(path)
        assert reloaded.set_ids == {0, 1}
        assert len(reloaded) == 2

    def test_masks_repair_then_duplicate_append(self, tmp_path):
        path = tmp_path / "masks.jsonl"
        MasksRepository(path).add_all([fault_set(0)])
        with open(path, "a") as fh:
            fh.write('{"set_id": 1, "mas')
        with pytest.warns(RuntimeWarning, match="torn"):
            repo = MasksRepository(path)
        assert len(repo) == 1
        repo.add_all([fault_set(0), fault_set(1)])
        assert sorted(fs.set_id for fs in MasksRepository(path)) == [0, 1]

    def test_reopen_while_tailer_holds_the_file(self, tmp_path):
        # An `obs`-style tailer holds a read handle while the writer
        # reattaches, repairs the tail, and appends: the reopen must
        # not be blocked by the reader, and the reader sees a
        # well-formed stream of complete lines afterwards.
        path = tmp_path / "logs.jsonl"
        good = self.make_torn_logs(path)
        with open(path) as tailer:
            consumed = tailer.read(len(good))   # complete lines only
            with pytest.warns(RuntimeWarning, match="torn"):
                repo = LogsRepository(path)
            repo.add(record(1))
            fresh = tailer.read()
            assert consumed == good
            assert fresh.endswith("\n")
            assert json.loads(fresh)["data"]["set_id"] == 1
        assert LogsRepository(path).set_ids == {0, 1}

    def test_corruption_before_complete_lines_raises(self, tmp_path):
        path = tmp_path / "logs.jsonl"
        repo = LogsRepository(path)
        repo.set_golden(GOLDEN)
        repo.add(record(0))
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:12]
        path.write_text("".join(line + "\n" for line in lines))
        with pytest.raises(ValueError, match="corrupt"):
            LogsRepository(path)


class TestAppendFailure:
    """ENOSPC (and friends) surface as actionable CampaignError."""

    def test_logs_append_oserror(self, tmp_path, monkeypatch):
        path = tmp_path / "logs.jsonl"
        repo = LogsRepository(path, fsync=True)
        repo.set_golden(GOLDEN)

        def full_disk(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "fsync", full_disk)
        with pytest.raises(CampaignError) as err:
            repo.add(record(0))
        message = str(err.value)
        assert str(path) in message
        assert "fsck --repair" in message

    def test_masks_append_oserror(self, tmp_path, monkeypatch):
        path = tmp_path / "masks.jsonl"
        repo = MasksRepository(path, fsync=True)

        def full_disk(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "fsync", full_disk)
        with pytest.raises(CampaignError, match="masks.jsonl"):
            repo.add_all([fault_set(0)])

    def test_unwritable_parent_oserror(self, tmp_path):
        # The parent path is a *file*: mkdir fails with an OSError the
        # repository must turn into the same actionable error.
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")
        repo = LogsRepository(blocker / "logs.jsonl")
        with pytest.raises(CampaignError, match="not-a-dir"):
            repo.add(record(0))
