"""Masks/logs repositories: reopen idempotence, dedup, durability."""

from repro.core.fault import FaultMask, FaultSet
from repro.core.outcome import GoldenReference, InjectionRecord
from repro.core.repository import LogsRepository, MasksRepository


def fault_set(set_id):
    return FaultSet(masks=(FaultMask("l1d", entry=set_id, bit=0,
                                     cycle=10 + set_id),),
                    set_id=set_id)


def record(set_id, reason="exit"):
    return InjectionRecord(set_id=set_id,
                           masks=[fault_set(set_id).masks[0].to_dict()],
                           reason=reason, exit_code=0, output_hex="ab")


GOLDEN = GoldenReference(cycles=100, exit_code=0, output_hex="ab")


class TestMasksRepository:
    def test_reopen_and_readd_appends_nothing(self, tmp_path):
        path = tmp_path / "masks.jsonl"
        sets = [fault_set(i) for i in range(3)]
        MasksRepository(path).add_all(sets)
        size = path.stat().st_size

        # A resumed process regenerates the same deterministic masks
        # and re-adds them: the file must not grow, contents must not
        # duplicate.
        repo = MasksRepository(path)
        assert len(repo) == 3
        repo.add_all(sets)
        assert len(repo) == 3
        assert path.stat().st_size == size

    def test_partial_overlap_appends_only_fresh(self, tmp_path):
        path = tmp_path / "masks.jsonl"
        MasksRepository(path).add_all([fault_set(0), fault_set(1)])
        repo = MasksRepository(path)
        repo.add_all([fault_set(1), fault_set(2)])
        assert sorted(fs.set_id for fs in repo) == [0, 1, 2]
        assert sorted(fs.set_id for fs in MasksRepository(path)) == [0, 1, 2]

    def test_contains(self, tmp_path):
        repo = MasksRepository()
        repo.add_all([fault_set(7)])
        assert 7 in repo and 8 not in repo

    def test_fsync_flag_writes_durably(self, tmp_path):
        path = tmp_path / "masks.jsonl"
        MasksRepository(path, fsync=True).add_all([fault_set(0)])
        assert len(MasksRepository(path)) == 1


class TestLogsRepository:
    def test_reopen_and_readd_appends_nothing(self, tmp_path):
        path = tmp_path / "logs.jsonl"
        repo = LogsRepository(path)
        repo.set_golden(GOLDEN)
        repo.add(record(0))
        repo.add(record(1))
        size = path.stat().st_size

        # Crash-resume: reattach, re-set the identical golden, replay
        # the campaign loop over the same set_ids.
        repo2 = LogsRepository(path)
        assert repo2.golden == GOLDEN
        assert len(repo2) == 2
        repo2.set_golden(GOLDEN)
        repo2.add(record(0))
        repo2.add(record(1))
        assert len(repo2) == 2
        assert path.stat().st_size == size

    def test_resume_skip_list(self, tmp_path):
        path = tmp_path / "logs.jsonl"
        repo = LogsRepository(path)
        repo.set_golden(GOLDEN)
        repo.add(record(0))
        repo2 = LogsRepository(path)
        assert repo2.set_ids == {0}
        assert 0 in repo2 and 1 not in repo2
        repo2.add(record(1))               # only the missing injection
        assert LogsRepository(path).set_ids == {0, 1}

    def test_duplicate_add_keeps_first_record(self, tmp_path):
        repo = LogsRepository(tmp_path / "logs.jsonl")
        repo.add(record(0, reason="exit"))
        repo.add(record(0, reason="panic"))
        assert len(repo) == 1
        assert repo.records[0].reason == "exit"

    def test_changed_golden_appends_and_last_wins(self, tmp_path):
        path = tmp_path / "logs.jsonl"
        repo = LogsRepository(path)
        repo.set_golden(GOLDEN)
        other = GoldenReference(cycles=200, exit_code=0, output_hex="cd")
        repo.set_golden(other)
        assert LogsRepository(path).golden == other
        # Two golden rows on disk: the file stayed append-only.
        rows = path.read_text().strip().splitlines()
        assert sum('"golden"' in r for r in rows) == 2

    def test_fsync_flag_writes_durably(self, tmp_path):
        path = tmp_path / "logs.jsonl"
        repo = LogsRepository(path, fsync=True)
        repo.set_golden(GOLDEN)
        repo.add(record(0))
        loaded = LogsRepository(path)
        assert loaded.golden == GOLDEN and len(loaded) == 1
