"""repro.prune: golden-trace pre-classification and equivalence pruning.

The contract under test is soundness: a pruned campaign must classify
*identically* to an unpruned one — the analyzer only skips simulations
whose verdict the golden access trace already determines.  Covered
here: the per-rule classifier against hand-built traces, trace
determinism (serial == parallel, byte-identical), the disk cache, the
audit gate on both setup families, parallel/serial record equality,
the scheduler integration, and the mask-generator dedup regression.
"""

import pytest

from repro.core.campaign import InjectionCampaign, run_campaign
from repro.core.fault import INTERMITTENT, TRANSIENT, FaultMask, FaultSet
from repro.core.maskgen import FaultMaskGenerator, StructureInfo
from repro.core.parallel import run_campaign_parallel
from repro.prune import (PRUNE_ANALYZE, PRUNE_COLLAPSE, PRUNE_OFF,
                         RULE_DEAD, RULE_NEVER_READ, RULE_OVERWRITTEN,
                         AccessTrace, StructureTrace, TraceCache,
                         build_prune_plan, classify_mask)
from repro.sched.plan import StudySpec, WorkUnit
from repro.sched.worker import run_unit
from repro.sim.config import setup_config

from tests.helpers import tiny_program


# -- the per-rule classifier on hand-built traces --------------------------

def word_trace(events):
    return StructureTrace("int_rf", "word", 8, 64, events=events)

def line_trace(events, initial=(0,)):
    return StructureTrace("l1d", "line", 4, 512,
                          initial_filled=initial, events=events)


class TestClassifyMask:
    def test_read_first_is_not_prunable(self):
        st = word_trace({0: [[5, "r"]]})
        rule, window = classify_mask(st, 0, 3, cycle=2)
        assert rule is None and window == 0

    def test_flip_on_read_cycle_lands_after_the_read(self):
        # The dispatcher applies masks on cycle edges: a flip at cycle c
        # lands after every event stamped <= c.
        st = word_trace({0: [[3, "r"]]})
        rule, _ = classify_mask(st, 0, 0, cycle=3)
        assert rule == RULE_NEVER_READ

    def test_dead_entry_never_filled(self):
        st = line_trace({}, initial=())
        assert classify_mask(st, 0, 0, cycle=5)[0] == RULE_DEAD

    def test_dead_entry_after_invalidate(self):
        st = line_trace({0: [[4, "i"], [9, "F"], [12, "r"]]})
        assert classify_mask(st, 0, 0, cycle=6)[0] == RULE_DEAD
        # Refilled at 9: live again, and read at 12.
        assert classify_mask(st, 0, 0, cycle=10)[0] is None

    def test_covering_write_erases_the_flip(self):
        st = word_trace({2: [[6, "W"], [9, "r"]]})
        assert classify_mask(st, 2, 0, cycle=2)[0] == RULE_OVERWRITTEN

    def test_fill_erases_the_flip(self):
        st = line_trace({0: [[6, "F"], [9, "r"]]})
        assert classify_mask(st, 0, 0, cycle=2)[0] == RULE_OVERWRITTEN

    def test_partial_write_covers_only_its_bytes(self):
        st = line_trace({0: [[6, "w", 0, 8], [20, "r"]]})
        # bit 8 lives in byte 1, inside [0, 8): overwritten unread.
        assert classify_mask(st, 0, 8, cycle=2)[0] == RULE_OVERWRITTEN
        # bit 100 lives in byte 12, outside [0, 8): survives to the read.
        assert classify_mask(st, 0, 100, cycle=2)[0] is None

    def test_invalidated_unread(self):
        st = line_trace({0: [[6, "w", 0, 4], [9, "i"]]})
        assert classify_mask(st, 0, 400, cycle=2)[0] == RULE_NEVER_READ

    def test_never_touched_again(self):
        st = word_trace({1: [[3, "r"]]})
        assert classify_mask(st, 1, 0, cycle=7)[0] == RULE_NEVER_READ


# -- plan construction and equivalence classes -----------------------------

def _single(set_id, cycle, bit=1, entry=0, structure="int_rf",
            fault_type=TRANSIENT, duration=0):
    if fault_type == INTERMITTENT and not duration:
        duration = 5
    mask = FaultMask(structure=structure, entry=entry, bit=bit,
                     cycle=cycle, fault_type=fault_type, duration=duration)
    return FaultSet(masks=(mask,), set_id=set_id)


def _trace_for(st):
    return AccessTrace(setup="T", benchmark="t", cycles=100,
                       structures={st.name: st})


class TestBuildPrunePlan:
    def test_same_window_masks_collapse_to_one_representative(self):
        trace = _trace_for(word_trace({0: [[10, "r"], [20, "r"]]}))
        sets = [_single(0, 2), _single(1, 5), _single(2, 15),
                _single(3, 25)]
        plan = build_prune_plan(sets, trace, PRUNE_COLLAPSE)
        # Cycles 2 and 5 share the pre-first-read window: one clone.
        assert plan.clones == {1: 0}
        assert plan.classes == {0: [1]}
        # Cycle 15 is a different window — its own representative.
        assert plan.decision(2) is None
        # Cycle 25: nothing ever reads the entry again.
        assert plan.masked == {3: RULE_NEVER_READ}
        assert plan.stats()["simulated"] == 2

    def test_analyze_policy_never_collapses(self):
        trace = _trace_for(word_trace({0: [[10, "r"]]}))
        sets = [_single(0, 2), _single(1, 5)]
        plan = build_prune_plan(sets, trace, PRUNE_ANALYZE)
        assert plan.clones == {} and plan.masked == {}

    def test_multi_mask_and_non_transient_sets_are_simulated(self):
        trace = _trace_for(word_trace({}))
        multi = FaultSet(masks=(_single(0, 2).masks[0],
                                _single(0, 3, bit=2).masks[0]), set_id=0)
        interm = _single(1, 2, fault_type=INTERMITTENT)
        plan = build_prune_plan([multi, interm], trace, PRUNE_COLLAPSE)
        assert plan.decision(0) is None and plan.decision(1) is None

    def test_off_policy_prunes_nothing(self):
        trace = _trace_for(word_trace({}))
        plan = build_prune_plan([_single(0, 2)], trace, PRUNE_OFF)
        assert plan.decision(0) is None and plan.stats()["masked"] == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="prune policy"):
            build_prune_plan([], _trace_for(word_trace({})), "bogus")


# -- end-to-end soundness on both setup families ---------------------------

def _campaign(setup, prune, audit=0, structure="l1d", trace_cache=None):
    config = setup_config(setup)
    campaign = InjectionCampaign(config, tiny_program(config.isa), "tiny",
                                 structure, seed=11, prune=prune,
                                 audit=audit, trace_cache=trace_cache)
    campaign.prepare(injections=30)
    return campaign.run()


@pytest.fixture(scope="module", params=["MaFIN-x86", "GeFIN-x86"])
def pruned_pair(request):
    setup = request.param
    return (setup, _campaign(setup, PRUNE_OFF),
            _campaign(setup, PRUNE_COLLAPSE, audit=8))


class TestCampaignSoundness:
    def test_classification_is_invariant(self, pruned_pair):
        setup, off, pruned = pruned_pair
        assert pruned.classify() == off.classify()
        assert pruned.injections == off.injections == 30

    def test_audit_re_simulation_agrees(self, pruned_pair):
        _, _, pruned = pruned_pair
        audit = pruned.prune["audit"]
        assert audit["checked"] > 0
        assert audit["divergences"] == []
        assert audit["pristine_digest_ok"]

    def test_prune_accounting_is_closed(self, pruned_pair):
        _, _, pruned = pruned_pair
        stats = pruned.prune
        assert stats["masked"] + stats["collapsed"] > 0
        assert (stats["masked"] + stats["collapsed"]
                + stats["simulated"]) == stats["masks"] == 30
        marked = [r for r in pruned.records if r.pruned is not None]
        assert len(marked) == stats["masked"] + stats["collapsed"]

    def test_early_stops_count_only_simulated_runs(self, pruned_pair):
        _, _, pruned = pruned_pair
        assert pruned.early_stops == sum(
            1 for r in pruned.records
            if r.early_stop is not None and r.pruned is None)


class TestTraceDeterminismAndCache:
    def test_trace_is_deterministic(self):
        digests = {_campaign("MaFIN-x86",
                             PRUNE_ANALYZE).prune["trace_digest"]
                   for _ in range(2)}
        assert len(digests) == 1

    def test_cache_round_trip(self, tmp_path):
        first = _campaign("MaFIN-x86", PRUNE_ANALYZE,
                          trace_cache=tmp_path)
        again = _campaign("MaFIN-x86", PRUNE_ANALYZE,
                          trace_cache=tmp_path)
        assert first.prune["trace_source"] == "recorded"
        assert again.prune["trace_source"] == "cache"
        assert again.prune["trace_digest"] == first.prune["trace_digest"]
        assert again.records == first.records
        assert again.classify() == first.classify()

    def test_corrupt_cache_entry_is_re_recorded(self, tmp_path):
        cache = TraceCache(tmp_path)
        _campaign("MaFIN-x86", PRUNE_ANALYZE, trace_cache=cache)
        path = cache.path_for("MaFIN-x86", "tiny")
        path.write_bytes(b"garbage")
        result = _campaign("MaFIN-x86", PRUNE_ANALYZE, trace_cache=cache)
        assert result.prune["trace_source"] == "recorded"

    def test_stale_cache_entry_is_re_recorded(self, tmp_path):
        cache = TraceCache(tmp_path)
        first = _campaign("MaFIN-x86", PRUNE_ANALYZE, trace_cache=cache)
        trace = cache.load("MaFIN-x86", "tiny")
        trace.cycles += 1                  # simulator "changed"
        cache.store(trace)
        result = _campaign("MaFIN-x86", PRUNE_ANALYZE, trace_cache=cache)
        assert result.prune["trace_source"] == "recorded"
        assert result.prune["trace_digest"] == first.prune["trace_digest"]


class TestParallelParity:
    def test_parallel_equals_serial_under_pruning(self):
        kw = dict(injections=12, seed=21, prune=PRUNE_COLLAPSE)
        serial = run_campaign("GeFIN-x86", "sha", "l1d", **kw)
        parallel = run_campaign_parallel("GeFIN-x86", "sha", "l1d",
                                         workers=2, **kw)
        assert parallel == serial          # records, prune stats, digest
        assert parallel.classify() == serial.classify()
        assert parallel.prune["trace_digest"] == \
            serial.prune["trace_digest"]
        assert [r.pruned for r in parallel.records] == \
            [r.pruned for r in serial.records]


# -- scheduler integration -------------------------------------------------

class TestSchedPrune:
    def test_spec_rejects_unknown_policy(self):
        spec = StudySpec(setups=("MaFIN-x86",), benchmarks=("sha",),
                         structures=("l1d",), prune="bogus")
        with pytest.raises(ValueError, match="prune policy"):
            spec.validate()

    def test_unit_with_pruning_matches_without(self, tmp_path):
        unit = WorkUnit("MaFIN-x86", "sha", "l1d")
        base = dict(setups=("MaFIN-x86",), benchmarks=("sha",),
                    structures=("l1d",), injections=10, seed=5)
        off = run_unit(unit, StudySpec(**base), tmp_path / "off.jsonl")
        pruned = run_unit(unit, StudySpec(prune="collapse", **base),
                          tmp_path / "pruned.jsonl")
        assert pruned["counts"] == off["counts"]
        assert pruned["pruned"] > 0
        assert pruned["prune"]["simulated"] + pruned["pruned"] == 10

    def test_resume_over_pruned_logs(self, tmp_path):
        unit = WorkUnit("MaFIN-x86", "sha", "l1d")
        spec = StudySpec(setups=("MaFIN-x86",), benchmarks=("sha",),
                         structures=("l1d",), injections=10, seed=5,
                         prune="collapse")
        logs = tmp_path / "unit.jsonl"
        first = run_unit(unit, spec, logs)
        again = run_unit(unit, spec, logs)
        assert again["fresh"] == 0 and again["resumed"] == 10
        assert again["counts"] == first["counts"]


# -- mask-generator dedup regression ---------------------------------------

class TestGenerateMultiDedup:
    def test_no_duplicate_sites_within_a_run(self):
        info = StructureInfo("rf", entries=1, bits_per_entry=2)
        gen = FaultMaskGenerator(3)
        # 4 sites (2 bits x 2 cycles), 3 faults per run: collisions are
        # certain across 50 runs unless the generator redraws.
        for fs in gen.generate_multi([info], total_cycles=2, count=50,
                                     faults_per_run=3):
            sites = [(m.structure, m.entry, m.bit, m.cycle)
                     for m in fs.masks]
            assert len(set(sites)) == len(sites) == 3

    def test_impossible_population_rejected(self):
        info = StructureInfo("rf", entries=1, bits_per_entry=2)
        with pytest.raises(ValueError, match="distinct fault sites"):
            FaultMaskGenerator(3).generate_multi(
                [info], total_cycles=1, count=1, faults_per_run=3)

    def test_redraws_are_deterministic(self):
        info = StructureInfo("rf", entries=1, bits_per_entry=2)
        runs = [FaultMaskGenerator(9).generate_multi(
                    [info], total_cycles=2, count=20, faults_per_run=3)
                for _ in range(2)]
        assert runs[0] == runs[1]
