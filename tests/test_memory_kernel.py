"""Unit tests for the memory model and the kernel/full-system layer."""

import struct

import pytest

from repro.isa.common import Section
from repro.sim.kernel import (EFAULT, ENOSYS, KMAGIC, Kernel, KernelPanic,
                              ProcessExit, ProcessKilled, SYS_EXIT,
                              SYS_WRITE)
from repro.sim.memory import (MemFault, Memory, PAGE_SIZE, PERM_KERNEL,
                              PERM_R, PERM_W, PERM_X)


def make_memory():
    mem = Memory(1 << 18)
    mem.map_region(0x1000, 0x1000, PERM_R | PERM_X)
    mem.map_region(0x2000, 0x1000, PERM_R | PERM_W)
    return mem


class TestMemory:
    def test_read_write_sizes(self):
        mem = make_memory()
        mem.write(0x2000, 4, 0xAABBCCDD)
        assert mem.read(0x2000, 4) == 0xAABBCCDD
        assert mem.read(0x2000, 1) == 0xDD
        assert mem.read(0x2002, 2) == 0xAABB
        mem.write(0x2004, 1, 0x7F)
        assert mem.read(0x2004, 1) == 0x7F

    def test_unmapped_page_faults(self):
        mem = make_memory()
        with pytest.raises(MemFault) as e:
            mem.read(0x8000, 4)
        assert e.value.kind == "pf"

    def test_null_page_unmapped(self):
        mem = make_memory()
        with pytest.raises(MemFault):
            mem.read(0, 4)

    def test_write_to_readonly_is_gp(self):
        mem = make_memory()
        with pytest.raises(MemFault) as e:
            mem.write(0x1000, 4, 1)
        assert e.value.kind == "gp"

    def test_kernel_page_protection(self):
        mem = make_memory()
        mem.map_region(0x3000, PAGE_SIZE, PERM_R | PERM_W | PERM_KERNEL)
        with pytest.raises(MemFault) as e:
            mem.read(0x3000, 4)
        assert e.value.kind == "gp"
        assert mem.read(0x3000, 4, kernel=True) == 0

    def test_cross_page_access_checks_both(self):
        mem = make_memory()
        with pytest.raises(MemFault):
            mem.read(0x2FFE, 4)  # crosses into unmapped 0x3000

    def test_out_of_range(self):
        mem = make_memory()
        with pytest.raises(MemFault):
            mem.read(mem.size - 2, 4)

    def test_load_program_sets_permissions(self):
        mem = Memory(1 << 18)
        mem.load_program([
            Section(0x1000, b"\x90" * 16, writable=False, executable=True),
            Section(0x2000, b"\x01" * 16, writable=True, executable=False),
        ])
        assert mem.fetch_window(0x1000, 4) == b"\x90" * 4
        with pytest.raises(MemFault):
            mem.fetch_window(0x2000, 4)  # data is not executable
        mem.write(0x2000, 1, 5)
        with pytest.raises(MemFault):
            mem.write(0x1000, 1, 5)

    def test_read_block_pads_out_of_range(self):
        mem = make_memory()
        blk = mem.read_block(mem.size - 4, 64)
        assert len(blk) == 64
        assert blk[4:] == bytes(60)

    def test_unaligned_access_supported(self):
        mem = make_memory()
        mem.write(0x2001, 4, 0x11223344)
        assert mem.read(0x2001, 4) == 0x11223344


class _KernelHarness:
    def __init__(self, isa="x86"):
        self.mem = Memory(1 << 18)
        self.mem.map_region(0x2000, PAGE_SIZE, PERM_R | PERM_W)
        self.kernel = Kernel(self.mem, isa)
        self.regs = [0] * 20

    def kread(self, addr, size):
        return self.mem.read(addr, size, kernel=True)

    def kwrite(self, addr, size, value):
        self.mem.write(addr, size, value, kernel=True)

    def uread(self, addr, size):
        return self.mem.read(addr, size)

    def syscall(self, num, a1=0, a2=0):
        self.regs[0], self.regs[1], self.regs[2] = num, a1, a2
        self.kernel.syscall(self.regs, self.kread, self.kwrite, self.uread)
        return self.regs[0]


class TestKernel:
    def test_write_appends_output(self):
        h = _KernelHarness()
        h.mem.write(0x2000, 4, 0xDEAD)
        ret = h.syscall(SYS_WRITE, 0x2000, 4)
        assert ret == 4
        assert h.kernel.output == (0xDEAD).to_bytes(4, "little")

    def test_write_accounts_in_kstruct(self):
        h = _KernelHarness()
        h.syscall(SYS_WRITE, 0x2000, 4)
        h.syscall(SYS_WRITE, 0x2000, 8)
        base = h.kernel.kdata_base
        magic, wc, bc, ck = struct.unpack_from("<IIII", h.mem.data, base)
        assert magic == KMAGIC and wc == 2 and bc == 12
        assert ck == magic ^ wc ^ bc

    def test_corrupted_kstruct_panics(self):
        h = _KernelHarness()
        h.mem.data[h.kernel.kdata_base + 4] ^= 0x10  # corrupt write_count
        with pytest.raises(KernelPanic):
            h.syscall(SYS_WRITE, 0x2000, 4)

    def test_write_bad_buffer_is_efault_event(self):
        h = _KernelHarness()
        ret = h.syscall(SYS_WRITE, 0x9000, 4)
        assert ret == EFAULT
        assert "efault" in h.kernel.events

    def test_oversized_write_truncated_and_logged(self):
        h = _KernelHarness()
        ret = h.syscall(SYS_WRITE, 0x2000, h.kernel.max_write + 100)
        assert ret == h.kernel.max_write
        assert "write-trunc" in h.kernel.events

    def test_unknown_syscall_enosys(self):
        h = _KernelHarness()
        ret = h.syscall(77)
        assert ret == ENOSYS
        assert "enosys" in h.kernel.events

    def test_exit_raises(self):
        h = _KernelHarness()
        with pytest.raises(ProcessExit) as e:
            h.syscall(SYS_EXIT, 9)
        assert e.value.code == 9

    def test_fatal_faults_kill(self):
        h = _KernelHarness()
        for kind, sig in (("ud", "SIGILL"), ("pf", "SIGSEGV"),
                          ("gp", "SIGSEGV"), ("div0", "SIGFPE")):
            with pytest.raises(ProcessKilled) as e:
                h.kernel.deliver_fault(kind, 0x1234)
            assert e.value.signal == sig

    def test_align_fixup_logged_not_fatal(self):
        h = _KernelHarness()
        h.kernel.deliver_fault("align", 0x1234)
        assert h.kernel.events == ["align-fixup"]

    def test_alignment_policy_is_arm_only(self):
        x86 = _KernelHarness("x86").kernel
        arm = _KernelHarness("arm").kernel
        assert not x86.needs_align_fixup(0x2001, 4)
        assert arm.needs_align_fixup(0x2001, 4)
        assert not arm.needs_align_fixup(0x2001, 1)
        assert not arm.needs_align_fixup(0x2004, 4)
