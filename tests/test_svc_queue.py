"""The fair queue: weighted DRR dispatch, quotas, aging, cancel.

Pure in-memory tests — every call passes an explicit ``now`` so token
buckets and aging are exercised on a synthetic clock, and dispatch
order is asserted deterministically.
"""

import pytest

from repro.svc.queue import FairQueue, QuotaExceeded, TenantPolicy


def drain(q, n, now=0.0):
    """Dispatch up to *n* items, releasing each immediately."""
    order = []
    for _ in range(n):
        got = q.next(now)
        if got is None:
            break
        tenant, payload = got
        order.append(tenant)
        q.release(tenant)
    return order


class TestTenantPolicy:
    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError, match="weight"):
            TenantPolicy(weight=0.0)
        with pytest.raises(ValueError, match="weight"):
            TenantPolicy(weight=-1.0)

    def test_rejects_zero_burst(self):
        with pytest.raises(ValueError, match="burst"):
            TenantPolicy(rate=1.0, burst=0)


class TestDispatchOrder:
    def test_single_tenant_is_fifo(self):
        q = FairQueue()
        for i in range(3):
            q.push("t", i, now=0.0)
        got = [q.next(0.0)[1] for _ in range(3)]
        assert got == [0, 1, 2]
        assert q.next(0.0) is None

    def test_weighted_interleave_one_to_three(self):
        """Satellite check: 1:3 weights interleave within tolerance.

        Over any prefix where both tenants still have queued work, the
        weight-3 tenant's dispatch count tracks three times the
        weight-1 tenant's, within one quantum of either weight.
        """
        q = FairQueue({"a": TenantPolicy(weight=1.0),
                       "b": TenantPolicy(weight=3.0)})
        for i in range(12):
            q.push("a", f"a{i}", now=0.0)
            q.push("b", f"b{i}", now=0.0)
        order = drain(q, 16)          # both tenants non-empty throughout
        assert len(order) == 16
        served = {"a": 0, "b": 0}
        for tenant in order:
            served[tenant] += 1
            assert abs(served["b"] - 3 * served["a"]) <= 3, \
                f"unfair prefix: {order}"
        # Over the window the ratio is exact: 4 a's to 12 b's.
        assert served == {"a": 4, "b": 12}

    def test_neither_tenant_starves(self):
        q = FairQueue({"a": TenantPolicy(weight=1.0),
                       "b": TenantPolicy(weight=100.0)})
        for i in range(50):
            q.push("a", i, now=0.0)
            q.push("b", i, now=0.0)
        order = drain(q, 60)
        assert "a" in order[:52], "weight-1 tenant shut out"

    def test_fractional_weights_still_dispatch(self):
        q = FairQueue({"a": TenantPolicy(weight=0.25),
                       "b": TenantPolicy(weight=0.5)})
        q.push("a", "x", now=0.0)
        q.push("b", "y", now=0.0)
        order = drain(q, 2)
        assert sorted(order) == ["a", "b"]

    def test_empty_queue_returns_none(self):
        assert FairQueue().next(0.0) is None


class TestQuotas:
    def test_max_queued_is_all_or_nothing(self):
        q = FairQueue({"t": TenantPolicy(max_queued=2)})
        with pytest.raises(QuotaExceeded) as err:
            q.admit("t", 3, now=0.0)
        assert err.value.reason == "queued"
        assert err.value.tenant == "t"
        q.admit("t", 2, now=0.0)           # exactly at the cap is fine
        q.push("t", 1, now=0.0)
        q.push("t", 2, now=0.0)
        with pytest.raises(QuotaExceeded):
            q.admit("t", 1, now=0.0)
        # Dispatching frees queued headroom.
        assert q.next(0.0) is not None
        q.admit("t", 1, now=0.0)

    def test_rate_token_bucket_refills(self):
        q = FairQueue({"t": TenantPolicy(rate=1.0, burst=2)})
        q.admit("t", 1, now=0.0)
        q.admit("t", 1, now=0.0)           # burst of 2 spent
        with pytest.raises(QuotaExceeded) as err:
            q.admit("t", 1, now=0.0)
        assert err.value.reason == "rate"
        q.admit("t", 1, now=1.0)           # 1s at 1/s refills one token
        with pytest.raises(QuotaExceeded):
            q.admit("t", 1, now=1.0)

    def test_max_concurrent_blocks_only_that_tenant(self):
        q = FairQueue({"a": TenantPolicy(max_concurrent=1)})
        q.push("a", 1, now=0.0)
        q.push("a", 2, now=0.0)
        q.push("b", 3, now=0.0)
        assert q.next(0.0) == ("a", 1)
        # a is at its cap; b still flows.
        assert q.next(0.0) == ("b", 3)
        assert q.next(0.0) is None
        q.release("a")
        assert q.next(0.0) == ("a", 2)

    def test_quota_free_tenant_is_unlimited(self):
        q = FairQueue()
        q.admit("t", 10_000, now=0.0)


class TestAgingAndDelay:
    def test_delayed_item_ineligible_until_due(self):
        q = FairQueue()
        q.push("t", "retry", now=0.0, delay_s=5.0)
        assert q.next(0.0) is None
        assert q.next(4.9) is None
        assert q.next(5.0) == ("t", "retry")

    def test_aged_head_jumps_the_rotation(self):
        # Without aging a weight-0.2 tenant waits ~5 rotations; with it
        # an over-age head is dispatched first regardless of weight.
        policies = {"slow": TenantPolicy(weight=0.2),
                    "fast": TenantPolicy(weight=5.0)}
        q = FairQueue(policies, aging_s=None)
        q.push("slow", "s", now=0.0)
        q.push("fast", "f", now=1.0)
        assert q.next(20.0)[0] == "fast"

        q = FairQueue(policies, aging_s=10.0)
        q.push("slow", "s", now=0.0)
        q.push("fast", "f", now=1.0)
        assert q.next(20.0)[0] == "slow"   # oldest over-age head wins

    def test_aged_dispatch_still_pays_deficit(self):
        q = FairQueue({"slow": TenantPolicy(weight=0.2)}, aging_s=1.0)
        q.push("slow", "s1", now=0.0)
        q.push("slow", "s2", now=0.0)
        assert q.next(5.0) == ("slow", "s1")
        assert q.snapshot(5.0)["tenants"]["slow"]["deficit"] < 0


class TestCancelAndBookkeeping:
    def test_remove_drops_matching_items(self):
        q = FairQueue()
        for payload in ("keep", "drop", "drop", "keep"):
            q.push("t", payload, now=0.0)
        assert q.remove("t", lambda p: p == "drop") == 2
        assert q.queued("t") == 2
        assert drain(q, 4) == ["t", "t"]

    def test_remove_everything_drops_tenant_from_rotation(self):
        q = FairQueue()
        q.push("t", 1, now=0.0)
        assert q.remove("t", lambda p: True) == 1
        assert q.queued() == 0
        assert q.next(0.0) is None
        assert q.tenants() == []

    def test_release_never_goes_negative(self):
        q = FairQueue()
        q.release("t")
        assert q.inflight("t") == 0

    def test_snapshot_reports_fairness_state(self):
        q = FairQueue({"a": TenantPolicy(weight=2.0)})
        q.push("a", 1, now=0.0)
        q.push("a", 2, now=0.0)
        q.next(3.0)
        snap = q.snapshot(3.0)
        assert snap["queued"] == 1 and snap["inflight"] == 1
        a = snap["tenants"]["a"]
        assert a["weight"] == 2.0
        assert a["queued"] == 1 and a["inflight"] == 1
        assert a["oldest_wait_s"] == pytest.approx(3.0)
