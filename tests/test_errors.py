"""The error hierarchy and its load-bearing distinctions."""

import pytest

from repro.errors import (AsmError, CampaignError, CompileError,
                          ReproError, SimAssertError, SimCrashError)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (SimAssertError, SimCrashError, AsmError, CompileError,
                    CampaignError):
            assert issubclass(exc, ReproError)

    def test_assert_and_crash_are_distinct(self):
        """The Parser maps these to different classes (Remark 8); they
        must never be catchable as one another."""
        assert not issubclass(SimAssertError, SimCrashError)
        assert not issubclass(SimCrashError, SimAssertError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise SimAssertError("decoder: reserved bits")

    def test_marss_check_raises_assert(self):
        from repro.sim.marss import MarssSim
        from tests.helpers import tiny_program
        sim = MarssSim(tiny_program("x86"))
        with pytest.raises(SimAssertError, match="broken"):
            sim.check(False, "broken")
        sim.check(True, "fine")  # no raise

    def test_gem5_check_is_silent(self):
        from repro.sim.gem5 import Gem5Sim
        from tests.helpers import tiny_program
        sim = Gem5Sim(tiny_program("x86"))
        sim.check(False, "gem5 does not assert here")
