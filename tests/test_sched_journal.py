"""Write-ahead journal: append, replay, crash tolerance."""

import json

import pytest

from repro.sched import (DONE, FAILED, LEASED, PENDING, QUARANTINED,
                         Journal, load_journal)

SPEC = {"setups": ["MaFIN-x86"], "benchmarks": ["sha"],
        "structures": ["l1d"], "fault_types": ["transient"],
        "injections": 4, "seed": 1}
UNITS = ["MaFIN-x86/sha/l1d/transient"]


def write_study(path, transitions):
    with Journal(path) as j:
        j.write_header(SPEC, UNITS)
        for unit, state, fields in transitions:
            j.record(unit, state, **fields)


class TestJournalReplay:
    def test_header_and_transitions(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        uid = UNITS[0]
        write_study(path, [
            (uid, LEASED, {"attempt": 1}),
            (uid, FAILED, {"attempt": 1, "reason": "error"}),
            (uid, LEASED, {"attempt": 2}),
            (uid, DONE, {"attempt": 2, "counts": {"Masked": 4},
                         "injections": 4}),
        ])
        state = load_journal(path)
        assert state.spec_dict == SPEC
        assert state.unit_ids == UNITS
        assert state.state_of(uid) == DONE
        assert state.is_done(uid)
        assert state.attempts[uid] == 2
        assert state.results[uid]["counts"] == {"Masked": 4}
        assert state.counts_by_unit() == {uid: {"Masked": 4}}
        assert state.tally()[DONE] == 1

    def test_unjournaled_unit_is_pending(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_study(path, [])
        state = load_journal(path)
        assert state.state_of(UNITS[0]) == PENDING
        assert state.tally() == {PENDING: 1, LEASED: 0, DONE: 0,
                                 FAILED: 0, QUARANTINED: 0}

    def test_stale_lease_counts_as_attempt(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        uid = UNITS[0]
        write_study(path, [(uid, LEASED, {"attempt": 1})])
        state = load_journal(path)
        assert state.state_of(uid) == LEASED
        assert state.attempts[uid] == 1

    def test_spec_hash_matches_studyspec(self, tmp_path):
        from repro.sched import StudySpec
        path = tmp_path / "journal.jsonl"
        spec = StudySpec.from_dict(SPEC)
        with Journal(path) as j:
            j.write_header(spec.to_dict(), UNITS, shard=(1, 2))
        state = load_journal(path)
        assert state.spec_hash == spec.spec_hash
        assert state.shard == (1, 2)


class TestCrashTolerance:
    def test_torn_tail_is_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        uid = UNITS[0]
        write_study(path, [(uid, LEASED, {"attempt": 1}),
                           (uid, DONE, {"counts": {"Masked": 4}})])
        with open(path, "a") as fh:
            fh.write('{"kind": "unit", "unit": "x", "sta')   # the crash
        state = load_journal(path)
        assert state.state_of(uid) == DONE

    def test_no_header_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps({"kind": "unit", "unit": "u",
                                    "state": LEASED}) + "\n")
        with pytest.raises(ValueError, match="no header"):
            load_journal(path)

    def test_append_is_immediately_durable(self, tmp_path):
        # Write-ahead contract: the record is on disk (visible to a
        # second reader) before Journal.record returns, file still open.
        path = tmp_path / "journal.jsonl"
        j = Journal(path, fsync=True)
        j.write_header(SPEC, UNITS)
        j.record(UNITS[0], LEASED, attempt=1)
        state = load_journal(path)         # journal NOT closed yet
        assert state.state_of(UNITS[0]) == LEASED
        j.close()

    def test_reopen_appends(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        uid = UNITS[0]
        write_study(path, [(uid, LEASED, {"attempt": 1})])
        with Journal(path) as j:           # a resumed scheduler
            j.record(uid, DONE, counts={"Masked": 4})
        state = load_journal(path)
        assert state.state_of(uid) == DONE
        assert state.attempts[uid] == 1
